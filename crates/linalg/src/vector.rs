//! Flat slice kernels, SIMD-shaped.
//!
//! These functions sit in the innermost loops of skip-gram training
//! (`dot` + `axpy` per positive/negative sample per step) and of the
//! serving hot path (per-candidate `dot`, per-centroid `dist2_sq`).
//! The reduction kernels are written as **chunked fixed-width-lane
//! loops**: the main loop walks exact `LANES`-wide chunks keeping one
//! independent accumulator per lane (no loop-carried dependency on a
//! single accumulator), the lanes are folded in a fixed tree order,
//! and a scalar tail handles the remainder. This is the shape LLVM's
//! autovectorizer reliably turns into packed SIMD without `unsafe` or
//! nightly `std::simd` — and the seam where `std::simd` can slot in
//! later without changing results. Element-wise kernels instead use
//! plain bounds-check-free zip loops, which LLVM vectorizes widest
//! for streaming stores (see [`axpy`]).
//!
//! **Determinism contract:** every kernel's result depends only on its
//! inputs — the lane count and fold order are compile-time constants,
//! so results are bit-identical across runs, thread counts, and call
//! sites. Reduction kernels (`dot`, `norm2_sq`, `dist2_sq`) define a
//! *canonical* summation order: lane-strided partial sums folded as a
//! fixed tree, then the scalar tail left to right. This order differs
//! from the pre-lane single-accumulator order, so goldens pinned on the
//! old order were re-pinned once (see `tests/parallel_determinism.rs`);
//! per call the two orders agree to a few ulps (asserted below).
//! Element-wise kernels (`axpy`, `scale`) are bit-identical to their
//! scalar forms for every input.

/// Lane width of the `f64` kernels: 4 × 64 bit = one AVX2 register,
/// two SSE2 registers — wide enough to hide FP-add latency, narrow
/// enough that the scalar tail stays cheap at the paper's `r = 128`.
const LANES_F64: usize = 4;

/// Lane width of the `f32` kernels (serving path): 8 × 32 bit = one
/// AVX2 register.
const LANES_F32: usize = 8;

/// Inner product of two equal-length slices.
///
/// Canonical summation order: four lane-strided partial sums folded as
/// `(l0 + l1) + (l2 + l3)`, then the scalar tail in index order.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let n = x.len().min(y.len());
    let split = n - (n % LANES_F64);
    let (xm, xt) = x[..n].split_at(split);
    let (ym, yt) = y[..n].split_at(split);
    let mut lanes = [0.0f64; LANES_F64];
    for (xs, ys) in xm.chunks_exact(LANES_F64).zip(ym.chunks_exact(LANES_F64)) {
        // Fixed-size views let LLVM drop the chunk-length bookkeeping
        // and emit one packed multiply-add per iteration.
        let xs: &[f64; LANES_F64] = xs.try_into().expect("exact chunk");
        let ys: &[f64; LANES_F64] = ys.try_into().expect("exact chunk");
        for (l, acc) in lanes.iter_mut().enumerate() {
            *acc += xs[l] * ys[l];
        }
    }
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (a, b) in xt.iter().zip(yt) {
        s += a * b;
    }
    s
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
///
/// Element-wise, so there is no summation order to pin: results are
/// bit-identical in any loop shape. The bounds-check-free zip over
/// `[..n]` is the shape LLVM vectorizes widest for streaming
/// map-stores — measurably faster here than a hand-chunked lane loop
/// (`sp_kernel_bench`: the chunk-of-4 shape was ~2x slower than this
/// at `n = 128`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let n = x.len().min(y.len());
    for (yv, xv) in y[..n].iter_mut().zip(&x[..n]) {
        *yv += alpha * xv;
    }
}

/// `x *= alpha` in place (element-wise, bit-identical in any loop
/// shape; see [`axpy`] on why the plain loop is the fast one).
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Squared Euclidean norm (canonical [`dot`] order).
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// Squared Euclidean distance between two equal-length slices
/// (canonical lane order, like [`dot`]).
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    let n = x.len().min(y.len());
    let split = n - (n % LANES_F64);
    let (xm, xt) = x[..n].split_at(split);
    let (ym, yt) = y[..n].split_at(split);
    let mut lanes = [0.0f64; LANES_F64];
    for (xs, ys) in xm.chunks_exact(LANES_F64).zip(ym.chunks_exact(LANES_F64)) {
        let xs: &[f64; LANES_F64] = xs.try_into().expect("exact chunk");
        let ys: &[f64; LANES_F64] = ys.try_into().expect("exact chunk");
        for (l, acc) in lanes.iter_mut().enumerate() {
            let d = xs[l] - ys[l];
            *acc += d * d;
        }
    }
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (a, b) in xt.iter().zip(yt) {
        let d = a - b;
        s += d * d;
    }
    s
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    dist2_sq(x, y).sqrt()
}

/// `f32` inner product — the serving hot path (one call per candidate
/// per query). Eight lane-strided partial sums folded as
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, scalar tail in index
/// order. Part of the serving layer's bit-for-bit reproducibility
/// contract: TCP and in-process answers route through this same
/// function, so both see the identical canonical order.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len(), "dot_f32: length mismatch");
    let n = x.len().min(y.len());
    let split = n - (n % LANES_F32);
    let (xm, xt) = x[..n].split_at(split);
    let (ym, yt) = y[..n].split_at(split);
    let mut lanes = [0.0f32; LANES_F32];
    for (xs, ys) in xm.chunks_exact(LANES_F32).zip(ym.chunks_exact(LANES_F32)) {
        let xs: &[f32; LANES_F32] = xs.try_into().expect("exact chunk");
        let ys: &[f32; LANES_F32] = ys.try_into().expect("exact chunk");
        for (l, acc) in lanes.iter_mut().enumerate() {
            *acc += xs[l] * ys[l];
        }
    }
    let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (a, b) in xt.iter().zip(yt) {
        s += a * b;
    }
    s
}

/// `f32` squared Euclidean distance — the IVF coarse-quantizer kernel
/// (query-to-centroid and k-means assignment distances). Same lane
/// shape and canonical order as [`dot_f32`].
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dist2_sq_f32(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len(), "dist2_sq_f32: length mismatch");
    let n = x.len().min(y.len());
    let split = n - (n % LANES_F32);
    let (xm, xt) = x[..n].split_at(split);
    let (ym, yt) = y[..n].split_at(split);
    let mut lanes = [0.0f32; LANES_F32];
    for (xs, ys) in xm.chunks_exact(LANES_F32).zip(ym.chunks_exact(LANES_F32)) {
        let xs: &[f32; LANES_F32] = xs.try_into().expect("exact chunk");
        let ys: &[f32; LANES_F32] = ys.try_into().expect("exact chunk");
        for (l, acc) in lanes.iter_mut().enumerate() {
            let d = xs[l] - ys[l];
            *acc += d * d;
        }
    }
    let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (a, b) in xt.iter().zip(yt) {
        let d = a - b;
        s += d * d;
    }
    s
}

/// Numerically-stable logistic sigmoid `1 / (1 + e^{-x})`.
///
/// For large `|x|` the naive expression overflows `exp`; the two-branch
/// form never evaluates `exp` on a positive argument.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// `log(sigmoid(x))` computed without intermediate overflow/underflow.
///
/// Used by the skip-gram loss: `log σ(x) = -log(1 + e^{-x})` for
/// `x >= 0` and `x - log(1 + e^{x})` otherwise (the "softplus" trick).
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

/// Rescales `x` so that its Euclidean norm is at most `max_norm`
/// (the DPSGD clipping kernel). Returns the scaling factor applied
/// (`1.0` when no clipping happened).
#[inline]
pub fn clip_norm(x: &mut [f64], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip_norm: max_norm must be positive");
    let n = norm2(x);
    if n > max_norm {
        let f = max_norm / n;
        scale(f, x);
        f
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pre-lane reference: single accumulator, strict index order.
    fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..x.len().min(y.len()) {
            acc += x[i] * y[i];
        }
        acc
    }

    fn dist2_sq_scalar(x: &[f64], y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..x.len().min(y.len()) {
            let d = x[i] - y[i];
            acc += d * d;
        }
        acc
    }

    fn dot_f32_scalar(x: &[f32], y: &[f32]) -> f32 {
        let mut s = 0.0f32;
        for (a, b) in x.iter().zip(y) {
            s += a * b;
        }
        s
    }

    fn ulp_diff_f64(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64)
            .wrapping_sub(b.to_bits() as i64)
            .unsigned_abs()
    }

    fn ulp_diff_f32(a: f32, b: f32) -> u32 {
        (a.to_bits() as i32)
            .wrapping_sub(b.to_bits() as i32)
            .unsigned_abs()
    }

    fn test_vec(len: usize, salt: u64) -> Vec<f64> {
        (0..len)
            .map(|i| ((i as f64) * 0.7310 + salt as f64 * 0.137).sin() * 3.0)
            .collect()
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_every_tail_length_matches_scalar_within_ulps() {
        // The lane kernel must agree with the pre-lane single-accumulator
        // order to within a few ulps for every main-loop/tail split.
        // (Documented drift bound for the one-time golden re-pin: at
        // r = 128 with O(1) entries the observed delta is <= 4 ulps.)
        for n in 0..40 {
            let x = test_vec(n, 1);
            let y = test_vec(n, 2);
            let lanes = dot(&x, &y);
            let scalar = dot_scalar(&x, &y);
            assert!(
                ulp_diff_f64(lanes, scalar) <= 4,
                "n={n}: {lanes} vs {scalar}"
            );
        }
        let x = test_vec(128, 3);
        let y = test_vec(128, 4);
        assert!(ulp_diff_f64(dot(&x, &y), dot_scalar(&x, &y)) <= 4);
    }

    #[test]
    fn dot_is_deterministic_across_calls() {
        let x = test_vec(131, 5);
        let y = test_vec(131, 6);
        assert_eq!(dot(&x, &y).to_bits(), dot(&x, &y).to_bits());
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn axpy_bit_identical_to_scalar_for_every_length() {
        // axpy is element-wise: chunking must never change a single bit.
        for n in 0..20 {
            let x = test_vec(n, 7);
            let mut y_lanes = test_vec(n, 8);
            let mut y_scalar = y_lanes.clone();
            axpy(0.37, &x, &mut y_lanes);
            for i in 0..n {
                y_scalar[i] += 0.37 * x[i];
            }
            assert_eq!(
                y_lanes.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy diverged at n={n}"
            );
        }
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn scale_bit_identical_to_scalar_for_every_length() {
        for n in 0..20 {
            let mut x_lanes = test_vec(n, 9);
            let mut x_scalar = x_lanes.clone();
            scale(-1.618, &mut x_lanes);
            x_scalar.iter_mut().for_each(|v| *v *= -1.618);
            assert_eq!(
                x_lanes.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                x_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "scale diverged at n={n}"
            );
        }
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn distances() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist2_sq(&[1.0], &[4.0]), 9.0);
    }

    #[test]
    fn dist2_sq_every_tail_length_matches_scalar_within_ulps() {
        for n in 0..40 {
            let x = test_vec(n, 10);
            let y = test_vec(n, 11);
            let lanes = dist2_sq(&x, &y);
            let scalar = dist2_sq_scalar(&x, &y);
            assert!(
                ulp_diff_f64(lanes, scalar) <= 4,
                "n={n}: {lanes} vs {scalar}"
            );
        }
    }

    #[test]
    fn f32_kernels_match_scalar_within_ulps() {
        for n in 0..40 {
            let x: Vec<f32> = test_vec(n, 12).iter().map(|&v| v as f32).collect();
            let y: Vec<f32> = test_vec(n, 13).iter().map(|&v| v as f32).collect();
            assert!(
                ulp_diff_f32(dot_f32(&x, &y), dot_f32_scalar(&x, &y)) <= 4,
                "dot_f32 drifted at n={n}"
            );
            let mut scalar_d = 0.0f32;
            for (a, b) in x.iter().zip(&y) {
                let d = a - b;
                scalar_d += d * d;
            }
            assert!(
                ulp_diff_f32(dist2_sq_f32(&x, &y), scalar_d) <= 4,
                "dist2_sq_f32 drifted at n={n}"
            );
        }
        // dim = 16 (the serving bench shape) exercises two full chunks.
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        let y: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        assert_eq!(dot_f32(&x, &y).to_bits(), dot_f32(&x, &y).to_bits());
        assert!(dist2_sq_f32(&x, &y) >= 0.0);
    }

    #[test]
    fn f32_dot_handles_empty_and_single() {
        assert_eq!(dot_f32(&[], &[]), 0.0);
        assert_eq!(dot_f32(&[2.0], &[3.0]), 6.0);
        assert_eq!(dist2_sq_f32(&[1.0], &[4.0]), 9.0);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        for &x in &[-50.0, -3.0, -0.1, 0.1, 3.0, 50.0] {
            let s = sigmoid(x);
            // Note sigmoid(50) rounds to exactly 1.0 in f64; only the
            // closed interval is guaranteed at the extremes.
            assert!((0.0..=1.0).contains(&s), "sigmoid({x}) = {s} out of [0,1]");
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
        for &x in &[-3.0, -0.1, 0.1, 3.0] {
            let s = sigmoid(x);
            assert!(
                s > 0.0 && s < 1.0,
                "sigmoid({x}) = {s} not strictly interior"
            );
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-12);
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-20.0, -1.0, 0.0, 1.0, 20.0] {
            let naive = sigmoid(x).ln();
            assert!(
                (log_sigmoid(x) - naive).abs() < 1e-10,
                "x={x}: {} vs {}",
                log_sigmoid(x),
                naive
            );
        }
        // And stays finite where the naive form underflows to ln(0).
        assert!(log_sigmoid(-800.0).is_finite());
        assert!((log_sigmoid(-800.0) - (-800.0)).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_clips_only_above_threshold() {
        let mut x = vec![3.0, 4.0];
        let f = clip_norm(&mut x, 10.0);
        assert_eq!(f, 1.0);
        assert_eq!(x, vec![3.0, 4.0]);

        let f = clip_norm(&mut x, 1.0);
        assert!((f - 0.2).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn clip_norm_rejects_nonpositive_threshold() {
        let mut x = vec![1.0];
        clip_norm(&mut x, 0.0);
    }
}
