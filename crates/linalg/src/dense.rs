//! Row-major dense matrices.
//!
//! [`DenseMatrix`] backs the skip-gram embedding matrices `W_in` and
//! `W_out` (`|V| x r`) and the small MLP/GCN weights of the baseline
//! models. Rows are the unit of access everywhere in this workspace
//! (a node's embedding vector, a per-example gradient row), so the API
//! is row-oriented and row views are plain slices.

use crate::vector;
use rand::Rng;

/// A row-major dense `rows x cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Matrix with every entry drawn i.i.d. uniformly from `[lo, hi)`.
    ///
    /// Skip-gram follows the word2vec convention of initialising
    /// `W_in` uniformly in `[-0.5/r, 0.5/r)` and `W_out` at zero; the
    /// baselines use Xavier-style ranges. Both are expressed with this
    /// constructor.
    pub fn uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry accessor (row, col).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Entry setter (row, col).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// The whole backing buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the whole backing buffer, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to zero, keeping the allocation (the
    /// gradient-buffer reuse pattern: one workhorse matrix per trainer).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// `self += alpha * other`, shape-checked.
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Dense matrix product `self * other` (used only on small MLP
    /// weights; embedding-scale code never forms dense products).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({} vs {})",
            self.cols, other.rows
        );
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // ikj loop order: streams over `other` rows, cache-friendly for
        // row-major layouts.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                vector::axpy(a, orow, out_row);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Mean Euclidean norm of the rows (a cheap embedding-health
    /// diagnostic used by the trainer's logging hook).
    pub fn mean_row_norm(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.row_iter().map(vector::norm2).sum::<f64>() / self.rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_shape_and_content() {
        let m = DenseMatrix::zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_round_trip() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        DenseMatrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn uniform_respects_range_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = DenseMatrix::uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let m2 = DenseMatrix::uniform(10, 10, -0.5, 0.5, &mut rng2);
        assert_eq!(m, m2, "same seed must give identical matrices");
    }

    #[test]
    fn row_mut_updates_entries() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.row(0), &[0.0; 3]);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_scaled_and_fill_zero() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        a.add_scaled(2.0, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn frobenius_and_mean_row_norm() {
        let m = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.mean_row_norm() - 2.5).abs() < 1e-12);
    }
}
