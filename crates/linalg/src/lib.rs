//! # sp-linalg
//!
//! Dense and sparse linear-algebra kernels used throughout the
//! SE-PrivGEmb workspace.
//!
//! The paper's data shapes are small-but-hot: embedding matrices are
//! `|V| x r` dense row-major buffers (at most a few tens of MB), and
//! proximity matrices are `|V| x |V|` but sparse. Everything here is
//! `f64`: the differential-privacy accounting and the Gaussian noise
//! path benefit from the extra precision, and at these sizes the memory
//! cost is irrelevant (see DESIGN.md).
//!
//! Modules:
//! - [`vector`]: flat `&[f64]` kernels (dot, axpy, norms) used in the
//!   innermost skip-gram loops;
//! - [`dense`]: row-major [`dense::DenseMatrix`] with row views, the
//!   embedding-matrix workhorse;
//! - [`sparse`]: [`sparse::CsrMatrix`] with SpMV/SpGEMM, used for
//!   adjacency and proximity matrices;
//! - [`stats`]: scalar statistics (Pearson, Welford, log-space helpers)
//!   shared by the evaluation metrics and the RDP accountant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use dense::DenseMatrix;
pub use sparse::{CooBuilder, CsrMatrix, CsrRowBlock};
pub use stats::{log_binomial, logsumexp, pearson, RunningStats};
