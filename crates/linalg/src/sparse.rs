//! Compressed sparse row (CSR) matrices.
//!
//! CSR backs two central objects of the paper: the graph adjacency
//! matrix `A` and the node-proximity matrix `P` (Definition 4). Both
//! are `|V| x |V|` and far too large to store densely beyond toy
//! graphs, but all the operations the system needs — row iteration
//! (neighbour lists, per-source proximity rows), SpMV (Katz / PageRank
//! power iterations), and SpGEMM (`A^2` for the DeepWalk window-2
//! proximity) — are natural in CSR.

use crate::dense::DenseMatrix;
use std::ops::Range;

/// One contiguous block of CSR rows — per-row non-zero counts plus the
/// concatenated column indices and values — produced by row-partitioned
/// builders ([`CsrMatrix::spgemm_rows`], the proximity wedge
/// enumerator) and stitched back together with
/// [`CsrMatrix::from_row_blocks`].
#[derive(Clone, Debug, Default)]
pub struct CsrRowBlock {
    /// Number of stored entries in each row of the block, in row order.
    pub row_nnz: Vec<usize>,
    /// Column indices, concatenated across the block's rows.
    pub indices: Vec<u32>,
    /// Values parallel to `indices`.
    pub data: Vec<f64>,
}

impl CsrRowBlock {
    /// Number of rows in the block.
    #[inline]
    pub fn rows(&self) -> usize {
        self.row_nnz.len()
    }

    /// Appends `other`'s rows after this block's rows, preserving row
    /// order — how a band assembled from per-thread chunks (or a
    /// matrix assembled from bands) grows without an intermediate
    /// `Vec<CsrRowBlock>`.
    pub fn append(&mut self, mut other: CsrRowBlock) {
        debug_assert_eq!(other.indices.len(), other.data.len());
        self.row_nnz.append(&mut other.row_nnz);
        self.indices.append(&mut other.indices);
        self.data.append(&mut other.data);
    }

    /// Heap bytes held by the block's three arrays — what an
    /// out-of-core builder accounts against its memory budget while
    /// the block is resident.
    pub fn heap_bytes(&self) -> u64 {
        (self.row_nnz.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.data.capacity() * std::mem::size_of::<f64>()) as u64
    }
}

/// A CSR sparse matrix with `f64` values.
///
/// Invariants (checked by [`CsrMatrix::validate`] and maintained by all
/// constructors):
/// - `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing;
/// - `indices.len() == data.len() == indptr[rows]`;
/// - column indices within each row are strictly increasing and `< cols`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
}

/// Coordinate-format accumulator used to build a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are summed at build time, matching
/// the semantics of scipy's `coo_matrix -> csr`.
#[derive(Clone, Debug, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// New builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Queues `(i, j) += v`. Zero values are kept until `build`, where
    /// exact-zero sums are dropped.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "coo entry ({i},{j}) out of bounds"
        );
        self.entries.push((i as u32, j as u32, v));
    }

    /// Number of queued entries (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, merges duplicates, drops exact zeros, and produces the CSR.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut data: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                indptr[r as usize + 1] += 1;
                indices.push(c);
                data.push(v);
            }
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        let m = CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        };
        debug_assert!(m.validate().is_ok());
        m
    }
}

impl CsrMatrix {
    /// Empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Builds directly from raw CSR arrays.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Result<Self, String> {
        let m = Self {
            rows,
            cols,
            indptr,
            indices,
            data,
        };
        m.validate()?;
        Ok(m)
    }

    /// Checks all structural invariants; `Ok(())` when well-formed.
    pub fn validate(&self) -> Result<(), String> {
        if self.indptr.len() != self.rows + 1 {
            return Err(format!(
                "indptr length {} != rows+1 = {}",
                self.indptr.len(),
                self.rows + 1
            ));
        }
        if self.indptr[0] != 0 {
            return Err("indptr[0] != 0".into());
        }
        if *self.indptr.last().unwrap() != self.indices.len() {
            return Err("indptr[rows] != nnz".into());
        }
        if self.indices.len() != self.data.len() {
            return Err("indices/data length mismatch".into());
        }
        for i in 0..self.rows {
            if self.indptr[i] > self.indptr[i + 1] {
                return Err(format!("indptr decreasing at row {i}"));
            }
            let row = &self.indices[self.indptr[i]..self.indptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i}: column indices not strictly increasing"));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.cols {
                    return Err(format!("row {i}: column {last} out of bounds"));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_indices(&self, i: usize) -> &[u32] {
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i` (parallel to [`Self::row_indices`]).
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.data[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Mutable values of row `i`.
    #[inline]
    pub fn row_values_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[self.indptr[i]..self.indptr[i + 1]]
    }

    /// `(indices, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        (self.row_indices(i), self.row_values(i))
    }

    /// Value at `(i, j)` via binary search over row `i` (`0.0` when absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let idx = self.row_indices(i);
        match idx.binary_search(&(j as u32)) {
            Ok(pos) => self.row_values(i)[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_indices(i)
                .iter()
                .zip(self.row_values(i))
                .map(move |(&j, &v)| (i, j as usize, v))
        })
    }

    /// Sparse matrix–vector product `y = A x`.
    #[allow(clippy::needless_range_loop)] // index arithmetic is the point here
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv: x length mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for (k, &j) in self.row_indices(i).iter().enumerate() {
                acc += self.row_values(i)[k] * x[j as usize];
            }
            y[i] = acc;
        }
        y
    }

    /// Transposed sparse matrix–vector product `y = A^T x`.
    pub fn spmv_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "spmv_t: x length mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate().take(self.rows) {
            if xi == 0.0 {
                continue;
            }
            for (k, &j) in self.row_indices(i).iter().enumerate() {
                y[j as usize] += self.row_values(i)[k] * xi;
            }
        }
        y
    }

    /// Sparse–dense product `A * D` where `D` is `cols x r` dense;
    /// the GNN aggregation kernel (`Â H`).
    pub fn spmm_dense(&self, d: &DenseMatrix) -> DenseMatrix {
        assert_eq!(d.rows(), self.cols, "spmm_dense: shape mismatch");
        let mut out = DenseMatrix::zeros(self.rows, d.cols());
        for i in 0..self.rows {
            for (k, &j) in self.row_indices(i).iter().enumerate() {
                let v = self.row_values(i)[k];
                crate::vector::axpy(v, d.row(j as usize), out.row_mut(i));
            }
        }
        out
    }

    /// Sparse–sparse product `A * B` (classic Gustavson SpGEMM with a
    /// dense accumulator row). Delegates to the row-range kernel so the
    /// serial product and the row-partitioned parallel product (see
    /// `sp_proximity`) run the exact same per-row arithmetic and are
    /// bit-identical by construction.
    pub fn spgemm(&self, other: &CsrMatrix) -> CsrMatrix {
        let block = self.spgemm_rows(other, 0..self.rows, 0.0);
        Self::from_row_blocks(self.rows, other.cols, vec![block])
    }

    /// Gustavson SpGEMM restricted to the output rows in `rows`, with
    /// entries `|v| < drop_tol` dropped as they are produced
    /// (`drop_tol <= 0.0` keeps every structural non-zero, matching
    /// [`CsrMatrix::spgemm`]).
    ///
    /// Each output row depends only on the inputs, so computing
    /// disjoint ranges on different threads and assembling them with
    /// [`CsrMatrix::from_row_blocks`] yields bit-identical results to
    /// the serial product for any partition.
    pub fn spgemm_rows(&self, other: &CsrMatrix, rows: Range<usize>, drop_tol: f64) -> CsrRowBlock {
        assert_eq!(self.cols, other.rows, "spgemm: inner dimension mismatch");
        assert!(
            rows.end <= self.rows,
            "spgemm_rows: row range out of bounds"
        );
        let mut block = CsrRowBlock {
            row_nnz: Vec::with_capacity(rows.len()),
            indices: Vec::new(),
            data: Vec::new(),
        };
        let mut acc = vec![0.0f64; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for i in rows {
            for (k, &j) in self.row_indices(i).iter().enumerate() {
                let a = self.row_values(i)[k];
                let jr = j as usize;
                for (k2, &c) in other.row_indices(jr).iter().enumerate() {
                    let b = other.row_values(jr)[k2];
                    let cu = c as usize;
                    if acc[cu] == 0.0 {
                        touched.push(c);
                    }
                    acc[cu] += a * b;
                }
            }
            touched.sort_unstable();
            let before = block.indices.len();
            for &c in &touched {
                let v = acc[c as usize];
                if v != 0.0 && (drop_tol <= 0.0 || v.abs() >= drop_tol) {
                    block.indices.push(c);
                    block.data.push(v);
                }
                acc[c as usize] = 0.0;
            }
            touched.clear();
            block.row_nnz.push(block.indices.len() - before);
        }
        block
    }

    /// Assembles a CSR matrix from contiguous row blocks (in row
    /// order, jointly covering `0..rows`), as produced by
    /// [`CsrMatrix::spgemm_rows`] or any other row-partitioned builder.
    ///
    /// # Panics
    /// Panics if the blocks' row counts do not sum to `rows` or a block
    /// is internally inconsistent.
    pub fn from_row_blocks(rows: usize, cols: usize, blocks: Vec<CsrRowBlock>) -> CsrMatrix {
        let total_rows: usize = blocks.iter().map(|b| b.row_nnz.len()).sum();
        assert_eq!(total_rows, rows, "row blocks must cover every row");
        let nnz: usize = blocks.iter().map(|b| b.indices.len()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(nnz);
        let mut data: Vec<f64> = Vec::with_capacity(nnz);
        for block in blocks {
            assert_eq!(
                block.indices.len(),
                block.data.len(),
                "row block indices/data length mismatch"
            );
            assert_eq!(
                block.row_nnz.iter().sum::<usize>(),
                block.indices.len(),
                "row block nnz counts inconsistent"
            );
            let base = *indptr.last().unwrap();
            for &n in &block.row_nnz {
                indptr.push(indptr.last().unwrap() + n);
            }
            debug_assert_eq!(base + block.indices.len(), *indptr.last().unwrap());
            indices.extend(block.indices);
            data.extend(block.data);
        }
        let m = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        };
        debug_assert!(m.validate().is_ok());
        m
    }

    /// Transposed copy (two-pass counting transpose).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0.0f64; self.nnz()];
        for i in 0..self.rows {
            for (k, &j) in self.row_indices(i).iter().enumerate() {
                let pos = cursor[j as usize];
                indices[pos] = i as u32;
                data[pos] = self.row_values(i)[k];
                cursor[j as usize] += 1;
            }
        }
        let m = CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            data,
        };
        debug_assert!(m.validate().is_ok());
        m
    }

    /// Scales every stored value in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Element-wise sum `self + other` (shapes must match).
    pub fn add(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add: shape mismatch"
        );
        let mut b = CooBuilder::new(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            b.push(i, j, v);
        }
        for (i, j, v) in other.iter() {
            b.push(i, j, v);
        }
        b.build()
    }

    /// Sum of the stored values of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row_values(i).iter().sum()
    }

    /// Vector of all row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row_sum(i)).collect()
    }

    /// Sum of every stored value.
    pub fn total_sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Minimum strictly-positive stored value, if any.
    ///
    /// This is exactly the paper's `min(P) = min{p_ij | p_ij > 0}`
    /// constant from Theorem 3.
    pub fn min_positive(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|&v| v > 0.0)
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(m) => Some(m.min(v)),
            })
    }

    /// Row-normalises in place so that each non-empty row sums to 1
    /// (the random-walk transition matrix used by the DeepWalk
    /// proximity and personalised PageRank).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            let s = self.row_sum(i);
            if s != 0.0 {
                let inv = 1.0 / s;
                for v in self.row_values_mut(i) {
                    *v *= inv;
                }
            }
        }
    }

    /// Symmetric normalisation `D^{-1/2} (A) D^{-1/2}` used by GCN-style
    /// aggregation; `deg` must hold the (weighted) row sums to use.
    pub fn normalize_sym(&mut self, deg: &[f64]) {
        assert_eq!(
            deg.len(),
            self.rows,
            "normalize_sym: degree length mismatch"
        );
        assert_eq!(self.rows, self.cols, "normalize_sym: matrix must be square");
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        for i in 0..self.rows {
            let li = inv_sqrt[i];
            let start = self.indptr[i];
            let end = self.indptr[i + 1];
            for k in start..end {
                let j = self.indices[k] as usize;
                self.data[k] *= li * inv_sqrt[j];
            }
        }
    }

    /// Materialises as dense (test/debug helper; asserts smallness).
    pub fn to_dense(&self) -> DenseMatrix {
        assert!(
            self.rows * self.cols <= 16_000_000,
            "to_dense: refusing to densify a {}x{} matrix",
            self.rows,
            self.cols
        );
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            d.set(i, j, v);
        }
        d
    }

    /// Heap bytes held by the CSR arrays — the cost an out-of-core
    /// pipeline avoids by never materialising the matrix.
    pub fn heap_bytes(&self) -> u64 {
        (self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.data.capacity() * std::mem::size_of::<f64>()) as u64
    }

    /// True when the matrix equals its transpose (up to exact float
    /// equality; proximity matrices are built symmetrically).
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        self == &t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 0, 3.0);
        b.push(2, 1, 4.0);
        b.build()
    }

    #[test]
    fn coo_build_sorts_and_merges() {
        let mut b = CooBuilder::new(2, 2);
        b.push(1, 1, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 1, 3.0);
        b.push(0, 1, 5.0);
        b.push(0, 1, -5.0); // cancels to zero -> dropped
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.validate().unwrap();
    }

    #[test]
    fn get_and_rows() {
        let m = sample();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row_indices(2), &[0, 1]);
        assert_eq!(m.row_values(2), &[3.0, 4.0]);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_t_matches_transpose_spmv() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.spmv_t(&x), m.transpose().spmv(&x));
    }

    #[test]
    fn spgemm_against_dense_product() {
        let m = sample();
        let prod = m.spgemm(&m);
        let dense = m.to_dense().matmul(&m.to_dense());
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (prod.get(i, j) - dense.get(i, j)).abs() < 1e-12,
                    "mismatch at ({i},{j})"
                );
            }
        }
        prod.validate().unwrap();
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_is_elementwise() {
        let m = sample();
        let s = m.add(&m);
        for (i, j, v) in m.iter() {
            assert_eq!(s.get(i, j), 2.0 * v);
        }
    }

    #[test]
    fn row_sums_total_and_min_positive() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.total_sum(), 10.0);
        assert_eq!(m.min_positive(), Some(1.0));
        assert_eq!(CsrMatrix::zeros(2, 2).min_positive(), None);
    }

    #[test]
    fn normalize_rows_gives_stochastic_rows() {
        let mut m = sample();
        m.normalize_rows();
        assert!((m.row_sum(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.row_sum(1), 0.0);
        assert!((m.row_sum(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_sym_scales_by_degrees() {
        // Symmetric 2x2 with ones off-diagonal.
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 0, 1.0);
        let mut m = b.build();
        m.normalize_sym(&[1.0, 4.0]);
        assert!((m.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetry_detection() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 2.0);
        b.push(1, 0, 2.0);
        assert!(b.build().is_symmetric());
        assert!(!sample().is_symmetric());
    }

    #[test]
    fn spmm_dense_matches_manual() {
        let m = sample();
        let d = DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let out = m.spmm_dense(&d);
        // Row 0 of m = [1,0,2] -> 1*[1,0] + 2*[1,1] = [3,2]
        assert_eq!(out.row(0), &[3.0, 2.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
        // Row 2 = [3,4,0] -> 3*[1,0] + 4*[0,1] = [3,4]
        assert_eq!(out.row(2), &[3.0, 4.0]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![1], vec![5.0]).is_ok());
        // decreasing indptr
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // unsorted columns
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn row_block_append_matches_two_block_assembly() {
        let m = sample();
        let top = m.spgemm_rows(&m, 0..2, 0.0);
        let bottom = m.spgemm_rows(&m, 2..3, 0.0);
        let via_vec = CsrMatrix::from_row_blocks(3, 3, vec![top.clone(), bottom.clone()]);
        let mut merged = top;
        assert_eq!(merged.rows(), 2);
        merged.append(bottom);
        assert_eq!(merged.rows(), 3);
        assert!(merged.heap_bytes() > 0);
        let via_append = CsrMatrix::from_row_blocks(3, 3, vec![merged]);
        assert_eq!(via_vec, via_append);
        assert_eq!(via_vec, m.spgemm(&m));
    }

    #[test]
    fn heap_bytes_counts_all_arrays() {
        let m = sample();
        let expect = (m.indptr.capacity() * std::mem::size_of::<usize>()
            + m.indices.capacity() * std::mem::size_of::<u32>()
            + m.data.capacity() * std::mem::size_of::<f64>()) as u64;
        assert_eq!(m.heap_bytes(), expect);
        assert!(m.heap_bytes() >= (m.nnz() * 12) as u64);
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let m = sample();
        let tr: Vec<_> = m.iter().collect();
        assert_eq!(tr, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]);
    }
}
