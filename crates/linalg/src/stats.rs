//! Scalar statistics and log-space helpers.
//!
//! Two consumers: the evaluation metrics (Pearson correlation is the
//! definition of the paper's StrucEqu score; Welford aggregation powers
//! the "mean ± SD over 10 runs" rows of Tables II–VI) and the RDP
//! accountant (log-binomials and `logsumexp` keep Wang et al.'s
//! subsampling bound finite at large α).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` when fewer than two points are given or either sample
/// has zero variance (the coefficient is undefined there — callers
/// treat that as "no structural signal").
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Sample mean. Returns `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Unbiased sample standard deviation (`n-1` denominator). Returns
/// `0.0` for fewer than two points.
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let ss = x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>();
    (ss / (x.len() - 1) as f64).sqrt()
}

/// Welford online mean/variance accumulator.
///
/// The experiment binaries repeat every configuration several times
/// and report `mean ± SD`; this accumulator lets them do so without
/// retaining per-run vectors.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0.0` with fewer than two points).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (Chan et al. parallel combination),
    /// used when experiment repetitions run on worker threads.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }
}

/// `log(C(n, k))` computed stably as a sum of logs.
///
/// Exact enough for the accountant's `n <= 1024` range and never
/// overflows, unlike computing the binomial itself.
pub fn log_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0;
    for i in 1..=k {
        acc += ((n - k + i) as f64).ln() - (i as f64).ln();
    }
    acc
}

/// `log(sum_i exp(x_i))` with the max-shift trick.
///
/// Empty input yields `-inf` (the log of an empty sum). `-inf` entries
/// are handled transparently.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// `log(exp(a) + exp(b))` for streaming accumulation.
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance in x
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn pearson_known_value() {
        // Hand-checked small example.
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r - 0.866_025_403_784_438_6).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [0.3, -1.2, 4.5, 2.2, 0.0, 7.7];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), xs.len() as u64);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_equals_concat() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut ra = RunningStats::new();
        a.iter().for_each(|&x| ra.push(x));
        let mut rb = RunningStats::new();
        b.iter().for_each(|&x| rb.push(x));
        ra.merge(&rb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert!((ra.mean() - mean(&all)).abs() < 1e-12);
        assert!((ra.std_dev() - std_dev(&all)).abs() < 1e-12);

        // Merging into empty adopts the other side verbatim.
        let mut empty = RunningStats::new();
        empty.merge(&ra);
        assert!((empty.mean() - ra.mean()).abs() < 1e-15);
    }

    #[test]
    fn log_binomial_small_exact() {
        assert!((log_binomial(5, 2) - (10.0f64).ln()).abs() < 1e-12);
        assert!((log_binomial(10, 0) - 0.0).abs() < 1e-12);
        assert!((log_binomial(10, 10) - 0.0).abs() < 1e-12);
        assert_eq!(log_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn log_binomial_large_no_overflow() {
        // C(1024, 512) overflows f64 (~1e307 < C(1024,512) ~ 1e306.. close),
        // the log form must stay finite and match Stirling to ~1%.
        let lb = log_binomial(1024, 512);
        assert!(lb.is_finite());
        // log C(2n,n) ≈ 2n ln 2 - 0.5 ln(pi n)
        let approx = 1024.0 * std::f64::consts::LN_2 - 0.5 * (std::f64::consts::PI * 512.0).ln();
        assert!((lb - approx).abs() / approx < 0.01);
    }

    #[test]
    fn logsumexp_matches_naive_and_handles_extremes() {
        let xs = [0.1, 0.2, 0.3];
        let naive = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((logsumexp(&xs) - naive).abs() < 1e-12);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert_eq!(logsumexp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        // Huge values that would overflow exp().
        let big = [710.0, 711.0];
        assert!((logsumexp(&big) - (711.0 + (1.0 + (-1.0f64).exp()).ln())).abs() < 1e-9);
    }

    #[test]
    fn log_add_exp_consistency() {
        assert!((log_add_exp(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_add_exp(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log_add_exp(3.0, f64::NEG_INFINITY), 3.0);
        let via_lse = logsumexp(&[1.5, -2.0]);
        assert!((log_add_exp(1.5, -2.0) - via_lse).abs() < 1e-12);
    }
}
