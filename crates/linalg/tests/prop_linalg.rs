//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use sp_linalg::{dense::DenseMatrix, sparse::CooBuilder, stats, vector};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(x in vec_strategy(16), y in vec_strategy(16)) {
        prop_assert!((vector::dot(&x, &y) - vector::dot(&y, &x)).abs() < 1e-9);
    }

    #[test]
    fn dot_is_bilinear(x in vec_strategy(8), y in vec_strategy(8), a in -10.0f64..10.0) {
        let ax: Vec<f64> = x.iter().map(|&v| a * v).collect();
        let lhs = vector::dot(&ax, &y);
        let rhs = a * vector::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn cauchy_schwarz(x in vec_strategy(12), y in vec_strategy(12)) {
        let lhs = vector::dot(&x, &y).abs();
        let rhs = vector::norm2(&x) * vector::norm2(&y);
        prop_assert!(lhs <= rhs + 1e-6);
    }

    #[test]
    fn clip_norm_never_exceeds_threshold(mut x in vec_strategy(10), c in 0.01f64..50.0) {
        vector::clip_norm(&mut x, c);
        prop_assert!(vector::norm2(&x) <= c + 1e-9);
    }

    #[test]
    fn clip_norm_preserves_direction(x in vec_strategy(6), c in 0.01f64..50.0) {
        let mut clipped = x.clone();
        vector::clip_norm(&mut clipped, c);
        // clipped = f * x for some f in (0, 1]
        for i in 0..x.len() {
            if x[i] != 0.0 {
                let f = clipped[i] / x[i];
                prop_assert!(f > 0.0 && f <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn sigmoid_monotone(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        if a < b {
            prop_assert!(vector::sigmoid(a) <= vector::sigmoid(b));
        }
    }

    #[test]
    fn pearson_is_scale_invariant(x in vec_strategy(20), shift in -5.0f64..5.0, s in 0.1f64..10.0) {
        let y: Vec<f64> = x.iter().map(|&v| s * v + shift).collect();
        if let Some(r) = stats::pearson(&x, &y) {
            prop_assert!((r - 1.0).abs() < 1e-6, "pearson of affine image should be 1, got {r}");
        }
    }

    #[test]
    fn pearson_bounded(x in vec_strategy(20), y in vec_strategy(20)) {
        if let Some(r) = stats::pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn running_stats_agrees_with_batch(xs in proptest::collection::vec(-1e3f64..1e3, 2..64)) {
        let mut rs = stats::RunningStats::new();
        xs.iter().for_each(|&x| rs.push(x));
        prop_assert!((rs.mean() - stats::mean(&xs)).abs() < 1e-7);
        prop_assert!((rs.std_dev() - stats::std_dev(&xs)).abs() < 1e-7);
    }

    #[test]
    fn logsumexp_ge_max(xs in proptest::collection::vec(-500.0f64..500.0, 1..32)) {
        let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lse = stats::logsumexp(&xs);
        prop_assert!(lse >= m - 1e-9);
        prop_assert!(lse <= m + (xs.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn log_binomial_pascal_rule(n in 2u64..200, k in 1u64..199) {
        prop_assume!(k < n);
        // C(n,k) = C(n-1,k-1) + C(n-1,k), verified in log space.
        let lhs = stats::log_binomial(n, k);
        let rhs = stats::log_add_exp(
            stats::log_binomial(n - 1, k - 1),
            stats::log_binomial(n - 1, k),
        );
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }
}

/// Strategy producing a random small CSR matrix together with its dense twin.
fn coo_entries(rows: usize, cols: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec(
        (0..rows, 0..cols, -10.0f64..10.0).prop_map(|(i, j, v)| (i, j, v)),
        0..40,
    )
}

proptest! {
    #[test]
    fn csr_matches_dense_semantics(entries in coo_entries(8, 8)) {
        let mut b = CooBuilder::new(8, 8);
        let mut dense = DenseMatrix::zeros(8, 8);
        for &(i, j, v) in &entries {
            b.push(i, j, v);
            dense.set(i, j, dense.get(i, j) + v);
        }
        let csr = b.build();
        csr.validate().unwrap();
        for i in 0..8 {
            for j in 0..8 {
                prop_assert!((csr.get(i, j) - dense.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn csr_spmv_matches_dense(entries in coo_entries(6, 6), x in vec_strategy(6)) {
        let mut b = CooBuilder::new(6, 6);
        for &(i, j, v) in &entries {
            b.push(i, j, v);
        }
        let csr = b.build();
        let y = csr.spmv(&x);
        let dense = csr.to_dense();
        for (i, &yi) in y.iter().enumerate().take(6) {
            let expect = vector::dot(dense.row(i), &x);
            prop_assert!((yi - expect).abs() < 1e-8);
        }
    }

    #[test]
    fn csr_spgemm_matches_dense(e1 in coo_entries(5, 5), e2 in coo_entries(5, 5)) {
        let mut b1 = CooBuilder::new(5, 5);
        e1.iter().for_each(|&(i, j, v)| b1.push(i, j, v));
        let mut b2 = CooBuilder::new(5, 5);
        e2.iter().for_each(|&(i, j, v)| b2.push(i, j, v));
        let a = b1.build();
        let b = b2.build();
        let p = a.spgemm(&b);
        p.validate().unwrap();
        let pd = a.to_dense().matmul(&b.to_dense());
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((p.get(i, j) - pd.get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn csr_transpose_involution(entries in coo_entries(7, 4)) {
        let mut b = CooBuilder::new(7, 4);
        entries.iter().for_each(|&(i, j, v)| b.push(i, j, v));
        let m = b.build();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn csr_normalize_rows_stochastic(entries in coo_entries(6, 6)) {
        let mut b = CooBuilder::new(6, 6);
        // force positive values so row sums are positive when non-empty
        entries.iter().for_each(|&(i, j, v)| b.push(i, j, v.abs() + 0.1));
        let mut m = b.build();
        m.normalize_rows();
        for i in 0..6 {
            let s = m.row_sum(i);
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-9);
        }
    }
}
