//! Bounded retry with deterministic jittered backoff.
//!
//! The serving client, the dynamic publisher, and the CI harness all
//! need the same thing: absorb a transient IO failure without turning
//! one flaky write into a dead run, while keeping the schedule
//! deterministic so fault-plan tests stay reproducible. The jitter here
//! is a pure function of `(seed, attempt)` — two policies with the same
//! seed sleep the same amounts in the same order.

use std::time::Duration;

/// Which `io::ErrorKind`s a retry policy should absorb.
///
/// Permanent conditions (`NotFound`, `PermissionDenied`, bad input…)
/// surface immediately: retrying a missing directory only delays the
/// real error.
pub fn transient_io(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind::*;
    matches!(
        kind,
        Interrupted
            | WouldBlock
            | TimedOut
            | ConnectionRefused
            | ConnectionReset
            | ConnectionAborted
            | BrokenPipe
            | UnexpectedEof
    )
}

/// A bounded retry schedule: `attempts` tries total, sleeping an
/// exponentially growing, deterministically jittered backoff between
/// them.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (including the first); `1` disables retry.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Upper bound on the un-jittered backoff.
    pub cap: Duration,
    /// Jitter seed; same seed → same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The sleep after the (0-based) `attempt`-th failure:
    /// `min(base · 2^attempt, cap)` scaled by a deterministic jitter
    /// factor in `[0.75, 1.25)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.cap);
        let unit = (splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9)) >> 11)
            as f64
            * (1.0 / (1u64 << 53) as f64);
        exp.mul_f64(0.75 + 0.5 * unit)
    }

    /// Runs `op` up to `attempts` times, sleeping [`RetryPolicy::backoff`]
    /// between tries. Only errors `is_transient` accepts are retried;
    /// the last error is returned when attempts run out.
    pub fn run<T, E>(
        &self,
        mut is_transient: impl FnMut(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if attempt + 1 < attempts && is_transient(&e) => {
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    fn quick(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(80),
            seed: 42,
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let a = quick(4);
        let b = quick(4);
        for attempt in 0..8 {
            assert_eq!(a.backoff(attempt), b.backoff(attempt));
            let d = a.backoff(attempt);
            assert!(d <= a.cap.mul_f64(1.25), "attempt {attempt}: {d:?}");
            assert!(d >= a.base.mul_f64(0.75), "attempt {attempt}: {d:?}");
        }
        let other = RetryPolicy {
            seed: 43,
            ..quick(4)
        };
        assert!(
            (0..8).any(|i| other.backoff(i) != a.backoff(i)),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn backoff_grows_until_the_cap() {
        let p = quick(8);
        // Un-jittered sequence: 10, 20, 40, 80, 80, … µs; jitter keeps
        // each within ±25%, so consecutive doublings stay ordered.
        assert!(p.backoff(1) > p.backoff(0));
        assert!(p.backoff(2) > p.backoff(1));
        assert!(p.backoff(30) <= p.cap.mul_f64(1.25));
    }

    #[test]
    fn run_retries_transient_errors_then_succeeds() {
        let mut calls = 0;
        let result: Result<u32, std::io::Error> = quick(4).run(
            |e: &std::io::Error| transient_io(e.kind()),
            || {
                calls += 1;
                if calls < 3 {
                    Err(std::io::Error::new(ErrorKind::TimedOut, "flaky"))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(result.unwrap(), 7);
        assert_eq!(calls, 3);
    }

    #[test]
    fn run_surfaces_permanent_errors_immediately() {
        let mut calls = 0;
        let result: Result<(), std::io::Error> = quick(4).run(
            |e: &std::io::Error| transient_io(e.kind()),
            || {
                calls += 1;
                Err(std::io::Error::new(ErrorKind::NotFound, "gone"))
            },
        );
        assert_eq!(result.unwrap_err().kind(), ErrorKind::NotFound);
        assert_eq!(calls, 1, "permanent errors must not be retried");
    }

    #[test]
    fn run_gives_up_after_attempts() {
        let mut calls = 0;
        let result: Result<(), std::io::Error> = quick(3).run(
            |e: &std::io::Error| transient_io(e.kind()),
            || {
                calls += 1;
                Err(std::io::Error::new(ErrorKind::ConnectionRefused, "down"))
            },
        );
        assert_eq!(result.unwrap_err().kind(), ErrorKind::ConnectionRefused);
        assert_eq!(calls, 3);
    }

    #[test]
    fn classification_matches_the_publish_contract() {
        assert!(!transient_io(ErrorKind::NotFound));
        assert!(!transient_io(ErrorKind::PermissionDenied));
        assert!(transient_io(ErrorKind::TimedOut));
        assert!(transient_io(ErrorKind::BrokenPipe));
        assert!(transient_io(ErrorKind::ConnectionRefused));
    }
}
