//! Deterministic fault injection for crash-safety testing.
//!
//! Production systems crash; a repo whose contract is *bit-identical*
//! determinism can test crashes deterministically too. This crate
//! provides seeded **fault plans**: a tiny rule language that decides,
//! purely as a function of `(site, invocation, seed)`, whether a named
//! IO seam should fail on its n-th call. The decision function is pure,
//! so the same plan produces the same kill schedule on every run and
//! every thread count — which is what lets the crash/resume suites
//! assert bit-identity against an uninterrupted run.
//!
//! # Plan grammar
//!
//! A plan is `;`-separated items. Each item is either `seed=S` or a
//! rule `site@selector[,kind=transient|permanent]`:
//!
//! ```text
//! seed=3;checkpoint.write@nth=2;serve.conn@p=0.25,kind=transient
//! ```
//!
//! Selectors (invocations are 1-based, counted per site):
//!
//! | selector  | fails when…                                   |
//! |-----------|-----------------------------------------------|
//! | `nth=K`   | invocation == K (exactly once)                |
//! | `every=K` | invocation % K == 0                           |
//! | `after=K` | invocation > K (every call past the K-th)     |
//! | `p=X`     | a seeded hash of (site, invocation) < X       |
//!
//! A site pattern is either an exact site name or a prefix glob with a
//! trailing `*` (`checkpoint.*`). A bare integer plan (`SP_FAULT_PLAN=3`)
//! is shorthand for `seed=3` with no rules: the global injector stays
//! inert, while test suites read the seed to vary their own in-process
//! kill schedules — this is what the CI fault matrix uses.
//!
//! # Global injection
//!
//! Library seams call [`inject`] with a site name from [`sites`]. When
//! the `SP_FAULT_PLAN` environment variable is unset this is a single
//! relaxed atomic load — zero-cost in production. When set, the plan is
//! parsed once and per-site invocation counters drive the rules; a
//! matched rule makes [`inject`] return an [`InjectedFault`], which
//! converts into a `std::io::Error` (transient faults map to
//! `TimedOut`, permanent ones to `Other`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod retry;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the global fault plan.
pub const PLAN_ENV: &str = "SP_FAULT_PLAN";

/// Named injection sites threaded behind the workspace's IO seams.
///
/// Sites are plain strings so downstream crates can add their own
/// without a dependency cycle; the constants here are the ones wired
/// into the workspace.
pub mod sites {
    /// `sp_model` atomic model-file writes (`.spm`).
    pub const MODEL_WRITE: &str = "model.write";
    /// `sp_model` checkpoint writes (`.spc`).
    pub const CHECKPOINT_WRITE: &str = "checkpoint.write";
    /// `sp_model` checkpoint reads (`.spc`).
    pub const CHECKPOINT_READ: &str = "checkpoint.read";
    /// `sp_datasets` edge-list / label reads.
    pub const DATASET_READ: &str = "datasets.read";
    /// `sp_served` per-connection handling (fault drops the connection
    /// before the greeting).
    pub const SERVE_CONN: &str = "serve.conn";
}

/// How an injected fault should present to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A fault a retry policy should absorb (maps to `TimedOut`).
    Transient,
    /// A fault that must surface immediately (maps to `Other`).
    Permanent,
}

impl FaultKind {
    /// The `io::ErrorKind` this fault presents as.
    pub fn io_kind(self) -> std::io::ErrorKind {
        match self {
            FaultKind::Transient => std::io::ErrorKind::TimedOut,
            FaultKind::Permanent => std::io::ErrorKind::Other,
        }
    }
}

/// A fault produced by [`inject`] or [`FaultPlan::fault_for`].
#[derive(Debug)]
pub struct InjectedFault {
    /// The site that failed.
    pub site: String,
    /// The 1-based invocation that matched a rule.
    pub invocation: u64,
    /// Transient or permanent.
    pub kind: FaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {:?} fault at {} (invocation {})",
            self.kind, self.site, self.invocation
        )
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for std::io::Error {
    fn from(fault: InjectedFault) -> Self {
        std::io::Error::new(fault.kind.io_kind(), fault.to_string())
    }
}

/// When within a site's invocation stream a rule fires.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Selector {
    Nth(u64),
    Every(u64),
    After(u64),
    Prob(f64),
}

#[derive(Clone, Debug)]
struct Rule {
    /// Exact site name, or prefix when `glob` is set (trailing `*`).
    site: String,
    glob: bool,
    selector: Selector,
    kind: FaultKind,
}

impl Rule {
    fn matches_site(&self, site: &str) -> bool {
        if self.glob {
            site.starts_with(&self.site)
        } else {
            site == self.site
        }
    }
}

/// A malformed plan specification.
#[derive(Debug, PartialEq)]
pub struct PlanError(String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A parsed, seeded fault plan. Decisions are pure functions of
/// `(site, invocation, seed)` — no hidden state — so a plan can be
/// consulted from any thread in any order and still describe the same
/// schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parses a plan from the grammar in the crate docs.
    pub fn parse(spec: &str) -> Result<Self, PlanError> {
        let spec = spec.trim();
        // Bare integer: seed-only plan (the CI fault-matrix shape).
        if let Ok(seed) = spec.parse::<u64>() {
            return Ok(Self {
                seed,
                rules: Vec::new(),
            });
        }
        let mut seed = 1u64;
        let mut rules = Vec::new();
        for item in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(value) = item.strip_prefix("seed=") {
                seed = value
                    .parse()
                    .map_err(|e| PlanError(format!("seed {value:?}: {e}")))?;
                continue;
            }
            let (site_pat, rest) = item
                .split_once('@')
                .ok_or_else(|| PlanError(format!("rule {item:?} has no '@selector'")))?;
            if site_pat.is_empty() {
                return Err(PlanError(format!("rule {item:?} has an empty site")));
            }
            let (glob, site) = match site_pat.strip_suffix('*') {
                Some(prefix) => (true, prefix.to_string()),
                None => (false, site_pat.to_string()),
            };
            let mut selector = None;
            let mut kind = FaultKind::Transient;
            for part in rest.split(',').map(str::trim) {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| PlanError(format!("expected key=value, got {part:?}")))?;
                match key {
                    "nth" | "every" | "after" => {
                        let n: u64 = value
                            .parse()
                            .map_err(|e| PlanError(format!("{key} {value:?}: {e}")))?;
                        if n == 0 && key != "after" {
                            return Err(PlanError(format!("{key}=0 never fires")));
                        }
                        selector = Some(match key {
                            "nth" => Selector::Nth(n),
                            "every" => Selector::Every(n),
                            _ => Selector::After(n),
                        });
                    }
                    "p" => {
                        let p: f64 = value
                            .parse()
                            .map_err(|e| PlanError(format!("p {value:?}: {e}")))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(PlanError(format!("p={p} outside [0, 1]")));
                        }
                        selector = Some(Selector::Prob(p));
                    }
                    "kind" => {
                        kind = match value {
                            "transient" => FaultKind::Transient,
                            "permanent" => FaultKind::Permanent,
                            other => {
                                return Err(PlanError(format!("unknown kind {other:?}")));
                            }
                        };
                    }
                    other => return Err(PlanError(format!("unknown key {other:?}"))),
                }
            }
            let selector =
                selector.ok_or_else(|| PlanError(format!("rule {item:?} has no selector")))?;
            rules.push(Rule {
                site,
                glob,
                selector,
                kind,
            });
        }
        Ok(Self { seed, rules })
    }

    /// The plan's seed (drives `p=` rules and lets test suites derive
    /// their own kill schedules).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no rule can ever fire.
    pub fn is_inert(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether `site` should fail on its `invocation`-th call (1-based).
    pub fn should_fail(&self, site: &str, invocation: u64) -> bool {
        self.fault_for(site, invocation).is_some()
    }

    /// Like [`FaultPlan::should_fail`], but reports the matched rule's
    /// fault kind. The first matching rule wins.
    pub fn fault_for(&self, site: &str, invocation: u64) -> Option<FaultKind> {
        for rule in &self.rules {
            if !rule.matches_site(site) {
                continue;
            }
            let fires = match rule.selector {
                Selector::Nth(k) => invocation == k,
                Selector::Every(k) => invocation % k == 0,
                Selector::After(k) => invocation > k,
                Selector::Prob(p) => unit_hash(self.seed, site, invocation) < p,
            };
            if fires {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// SplitMix64 — the workspace's standard seed-expansion hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a, the same shape the loaders use for fingerprints.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic uniform draw in `[0, 1)` from (seed, site, invocation).
fn unit_hash(seed: u64, site: &str, invocation: u64) -> f64 {
    let mixed = splitmix64(seed ^ site_hash(site) ^ splitmix64(invocation));
    // Top 53 bits → [0, 1), the standard double construction.
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// Global plan state. `ACTIVE` is the fast path: 0 = unknown, 1 = no
// plan (inject is a no-op), 2 = plan present.
static ACTIVE: AtomicU8 = AtomicU8::new(0);
static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
static COUNTERS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();

fn load_plan() -> Option<&'static FaultPlan> {
    let plan = PLAN.get_or_init(|| match std::env::var(PLAN_ENV) {
        Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            // A typo'd plan silently ignored would make a fault run
            // vacuously green; fail fast instead.
            Err(e) => panic!("{PLAN_ENV}={spec:?}: {e}"),
        },
        _ => None,
    });
    ACTIVE.store(if plan.is_some() { 2 } else { 1 }, Ordering::Relaxed);
    plan.as_ref()
}

/// The global plan parsed from `SP_FAULT_PLAN`, if any. First call
/// snapshots the environment; later changes to the variable are not
/// observed (each test binary is its own process, so suites that need
/// the env-driven path set the variable before the first injection).
pub fn plan() -> Option<&'static FaultPlan> {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => None,
        2 => PLAN.get().and_then(|p| p.as_ref()),
        _ => load_plan(),
    }
}

/// True when a global fault plan is installed.
pub fn enabled() -> bool {
    plan().is_some()
}

/// Consults the global plan at `site`, counting this call as one
/// invocation. `Ok(())` when no plan is set (a single atomic load) or
/// no rule fires; `Err` carries the injected fault.
pub fn inject(site: &str) -> Result<(), InjectedFault> {
    let Some(plan) = plan() else { return Ok(()) };
    if plan.is_inert() {
        return Ok(());
    }
    let counters = COUNTERS.get_or_init(|| Mutex::new(HashMap::new()));
    let invocation = {
        let mut map = counters.lock().expect("fault counter lock poisoned");
        let slot = map.entry(site.to_string()).or_insert(0);
        *slot += 1;
        *slot
    };
    match plan.fault_for(site, invocation) {
        Some(kind) => Err(InjectedFault {
            site: site.to_string(),
            invocation,
            kind,
        }),
        None => Ok(()),
    }
}

/// How many times [`inject`] has been consulted at `site` in this
/// process (0 when no plan is active). For fault-log reporting.
pub fn invocations(site: &str) -> u64 {
    COUNTERS
        .get()
        .and_then(|c| c.lock().ok().map(|m| m.get(site).copied().unwrap_or(0)))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_integer_is_a_seed_only_plan() {
        let plan = FaultPlan::parse("3").unwrap();
        assert_eq!(plan.seed(), 3);
        assert!(plan.is_inert());
        assert!(!plan.should_fail(sites::MODEL_WRITE, 1));
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::parse("checkpoint.write@nth=3").unwrap();
        let hits: Vec<u64> = (1..=10)
            .filter(|&i| plan.should_fail(sites::CHECKPOINT_WRITE, i))
            .collect();
        assert_eq!(hits, vec![3]);
        assert!(!plan.should_fail(sites::CHECKPOINT_READ, 3));
    }

    #[test]
    fn every_and_after_selectors() {
        let plan = FaultPlan::parse("a@every=4;b@after=2").unwrap();
        let every: Vec<u64> = (1..=9).filter(|&i| plan.should_fail("a", i)).collect();
        assert_eq!(every, vec![4, 8]);
        let after: Vec<u64> = (1..=5).filter(|&i| plan.should_fail("b", i)).collect();
        assert_eq!(after, vec![3, 4, 5]);
    }

    #[test]
    fn glob_matches_prefix() {
        let plan = FaultPlan::parse("checkpoint.*@nth=1").unwrap();
        assert!(plan.should_fail(sites::CHECKPOINT_WRITE, 1));
        assert!(plan.should_fail(sites::CHECKPOINT_READ, 1));
        assert!(!plan.should_fail(sites::MODEL_WRITE, 1));
    }

    #[test]
    fn probabilistic_rules_are_seed_deterministic() {
        let a = FaultPlan::parse("seed=7;x@p=0.5").unwrap();
        let b = FaultPlan::parse("seed=7;x@p=0.5").unwrap();
        let c = FaultPlan::parse("seed=8;x@p=0.5").unwrap();
        let draws = |p: &FaultPlan| (1..=64).map(|i| p.should_fail("x", i)).collect::<Vec<_>>();
        assert_eq!(draws(&a), draws(&b));
        assert_ne!(draws(&a), draws(&c), "different seeds, different schedule");
        let hits = draws(&a).iter().filter(|&&h| h).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 draws hit {hits}");
    }

    #[test]
    fn p_zero_never_fires_and_p_one_always_fires() {
        let plan = FaultPlan::parse("x@p=0;y@p=1").unwrap();
        assert!((1..=100).all(|i| !plan.should_fail("x", i)));
        assert!((1..=100).all(|i| plan.should_fail("y", i)));
    }

    #[test]
    fn kind_controls_io_error_mapping() {
        let plan = FaultPlan::parse("x@nth=1,kind=permanent;y@nth=1").unwrap();
        assert_eq!(plan.fault_for("x", 1), Some(FaultKind::Permanent));
        assert_eq!(plan.fault_for("y", 1), Some(FaultKind::Transient));
        let err: std::io::Error = InjectedFault {
            site: "y".into(),
            invocation: 1,
            kind: FaultKind::Transient,
        }
        .into();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(retry::transient_io(err.kind()));
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "x",          // no selector
            "x@",         // empty selector
            "x@nth=zero", // unparsable count
            "x@nth=0",    // never fires
            "x@p=1.5",    // out of range
            "x@nth=1,kind=flaky",
            "@nth=1", // empty site
            "seed=abc",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn seed_defaults_to_one() {
        assert_eq!(FaultPlan::parse("x@nth=1").unwrap().seed(), 1);
        assert_eq!(FaultPlan::parse("").unwrap().seed(), 1);
    }
}
