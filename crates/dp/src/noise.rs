//! Gaussian noise generation.
//!
//! The Gaussian mechanism (Definition 3 context, §II-B) adds
//! `N(0, S²σ²)` noise per coordinate. We implement our own
//! standard-normal sampler (Marsaglia polar method) instead of pulling
//! in `rand_distr`: the noise path is the security-critical part of a
//! DP system, and fifteen auditable lines beat a transitive
//! dependency. Statistical quality is asserted by moment and quantile
//! tests below.

use rand::Rng;

/// Standard-normal sampler using the Marsaglia polar method with a
/// cached spare deviate (the method produces pairs).
#[derive(Clone, Debug, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Fresh sampler with no cached deviate.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached spare deviate, if any. The polar method produces
    /// pairs and hands out the second sample on the next call, so the
    /// spare is part of the sampler's resumable state: a checkpoint
    /// that dropped it would shift every subsequent noise draw.
    pub fn spare(&self) -> Option<f64> {
        self.spare
    }

    /// Rebuilds a sampler from a checkpointed [`GaussianSampler::spare`],
    /// bit-exact.
    pub fn from_spare(spare: Option<f64>) -> Self {
        Self { spare }
    }

    /// Draws one `N(0, 1)` sample.
    pub fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            // u, v uniform on (-1, 1); accept when inside the unit disc.
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Draws one `N(0, std²)` sample.
    pub fn with_std<R: Rng + ?Sized>(&mut self, std: f64, rng: &mut R) -> f64 {
        debug_assert!(std >= 0.0, "negative std");
        std * self.standard(rng)
    }

    /// Adds i.i.d. `N(0, std²)` noise to every element of `x`
    /// (the Gaussian mechanism applied to a vector-valued function).
    pub fn perturb_slice<R: Rng + ?Sized>(&mut self, x: &mut [f64], std: f64, rng: &mut R) {
        if std == 0.0 {
            return;
        }
        for v in x.iter_mut() {
            *v += self.with_std(std, rng);
        }
    }

    /// Fills `out` with i.i.d. `N(0, std²)` samples.
    pub fn fill_slice<R: Rng + ?Sized>(&mut self, out: &mut [f64], std: f64, rng: &mut R) {
        for v in out.iter_mut() {
            *v = self.with_std(std, rng);
        }
    }
}

/// Convenience: a vector of `n` i.i.d. `N(0, std²)` samples.
pub fn gaussian_vec<R: Rng + ?Sized>(n: usize, std: f64, rng: &mut R) -> Vec<f64> {
    let mut s = GaussianSampler::new();
    let mut out = vec![0.0; n];
    s.fill_slice(&mut out, std, rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        gaussian_vec(n, 1.0, &mut rng)
    }

    #[test]
    fn moments_match_standard_normal() {
        let xs = samples(200_000, 42);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let skew = xs.iter().map(|&x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        let kurt = xs.iter().map(|&x| (x - mean).powi(4)).sum::<f64>() / n / (var * var);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn quantiles_match_standard_normal() {
        let mut xs = samples(200_000, 7);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| xs[(p * xs.len() as f64) as usize];
        // Φ^{-1}(0.5)=0, Φ^{-1}(0.8413)≈1, Φ^{-1}(0.9772)≈2
        assert!(q(0.5).abs() < 0.02, "median {}", q(0.5));
        assert!((q(0.8413) - 1.0).abs() < 0.03, "q84 {}", q(0.8413));
        assert!((q(0.9772) - 2.0).abs() < 0.06, "q97.7 {}", q(0.9772));
    }

    #[test]
    fn scaled_std_is_linear() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = gaussian_vec(100_000, 5.0, &mut rng);
        let n = xs.len() as f64;
        let var = xs.iter().map(|&x| x * x).sum::<f64>() / n;
        assert!((var.sqrt() - 5.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(samples(100, 9), samples(100, 9));
        assert_ne!(samples(100, 9), samples(100, 10));
    }

    #[test]
    fn zero_std_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = GaussianSampler::new();
        let mut x = vec![1.0, 2.0, 3.0];
        s.perturb_slice(&mut x, 0.0, &mut rng);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn perturb_changes_values_with_positive_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = GaussianSampler::new();
        let mut x = vec![0.0; 16];
        s.perturb_slice(&mut x, 1.0, &mut rng);
        assert!(x.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn spare_deviate_consumed_in_pairs() {
        // Two consecutive draws should use one accept/reject round:
        // verify the stream differs from restarting the sampler.
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut s1 = GaussianSampler::new();
        let a = s1.standard(&mut rng1);
        let b = s1.standard(&mut rng1);
        let mut rng2 = StdRng::seed_from_u64(5);
        let mut s2 = GaussianSampler::new();
        let a2 = s2.standard(&mut rng2);
        let mut s3 = GaussianSampler::new();
        let b2 = s3.standard(&mut rng2);
        assert_eq!(a, a2);
        // b comes from the spare; b2 from a fresh polar round — they differ.
        assert_ne!(b, b2);
    }
}
