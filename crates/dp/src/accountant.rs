//! RDP composition and conversion to (ε, δ)-DP.
//!
//! Algorithm 2 tracks privacy per epoch (lines 8–10): each epoch is a
//! subsampled Gaussian mechanism with rate `γ = B/|E|`; RDP composes
//! additively per order (Sequential Composition, §II-B); and the spent
//! budget is reported back in (ε, δ) terms via the paper's Theorem 1:
//! `(α, ε)-RDP ⇒ (ε + log(1/δ)/(α-1), δ)-DP`, optimised over a grid of
//! integer orders.

use crate::rdp::subsampled_gaussian_rdp;

/// Largest RDP order kept on the default grid. Orders 2..=64 cover the
/// paper's regime (σ=5, γ≈10⁻³..10⁻²) with slack; pushing further adds
/// cost without tightening ε.
pub const DEFAULT_ORDERS_MAX: u64 = 64;

/// A target (ε, δ) privacy budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacyBudget {
    /// Target ε.
    pub epsilon: f64,
    /// Target δ (the paper fixes `δ = 10⁻⁵`).
    pub delta: f64,
}

impl PrivacyBudget {
    /// New budget; both parameters must be positive and `δ < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Self { epsilon, delta }
    }
}

/// Composes RDP losses over a grid of integer orders.
#[derive(Clone, Debug)]
pub struct RdpAccountant {
    orders: Vec<u64>,
    /// Accumulated RDP ε at each order (parallel to `orders`).
    rdp: Vec<f64>,
    steps: u64,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new(DEFAULT_ORDERS_MAX)
    }
}

impl RdpAccountant {
    /// Accountant with integer orders `2..=max_order`.
    pub fn new(max_order: u64) -> Self {
        assert!(max_order >= 2, "need at least order 2");
        let orders: Vec<u64> = (2..=max_order).collect();
        let rdp = vec![0.0; orders.len()];
        Self {
            orders,
            rdp,
            steps: 0,
        }
    }

    /// Records one epoch of the subsampled Gaussian mechanism with
    /// sampling rate `gamma` and noise multiplier `sigma`.
    pub fn step_subsampled_gaussian(&mut self, gamma: f64, sigma: f64) {
        for (i, &a) in self.orders.iter().enumerate() {
            self.rdp[i] += subsampled_gaussian_rdp(a, gamma, sigma);
        }
        self.steps += 1;
    }

    /// Records `n` identical epochs at once (composition is additive,
    /// so this is exact, not an approximation).
    pub fn step_many(&mut self, gamma: f64, sigma: f64, n: u64) {
        if n == 0 {
            return;
        }
        for (i, &a) in self.orders.iter().enumerate() {
            self.rdp[i] += n as f64 * subsampled_gaussian_rdp(a, gamma, sigma);
        }
        self.steps += n;
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Converts the accumulated RDP to the smallest ε achievable at
    /// failure probability `delta`, returning `(ε, best α)`.
    ///
    /// Uses Theorem 1: `ε(δ) = min_α [ ε_rdp(α) + ln(1/δ)/(α-1) ]`.
    pub fn epsilon(&self, delta: f64) -> (f64, u64) {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let log_inv_delta = (1.0 / delta).ln();
        let mut best = (f64::INFINITY, self.orders[0]);
        for (i, &a) in self.orders.iter().enumerate() {
            let eps = self.rdp[i] + log_inv_delta / (a as f64 - 1.0);
            if eps < best.0 {
                best = (eps, a);
            }
        }
        best
    }

    /// Converts the accumulated RDP to the smallest δ achievable at
    /// privacy level `epsilon` ("get privacy spent given the target ε",
    /// Algorithm 2 line 9), returning `(δ̂, best α)`.
    ///
    /// Inverting Theorem 1: `δ(ε) = min_α exp((α-1)(ε_rdp(α) - ε))`.
    pub fn delta(&self, epsilon: f64) -> (f64, u64) {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let mut best = (f64::INFINITY, self.orders[0]);
        for (i, &a) in self.orders.iter().enumerate() {
            let log_delta = (a as f64 - 1.0) * (self.rdp[i] - epsilon);
            let delta = log_delta.exp().min(1.0);
            if delta < best.0 {
                best = (delta, a);
            }
        }
        best
    }

    /// The raw accumulated RDP curve as `(order, ε_rdp)` pairs.
    pub fn curve(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.orders.iter().copied().zip(self.rdp.iter().copied())
    }

    /// Largest order on the grid.
    pub fn max_order(&self) -> u64 {
        *self.orders.last().expect("non-empty grid")
    }

    /// The raw accumulated RDP values, parallel to orders `2..=max`.
    /// Together with [`RdpAccountant::steps`] this is the accountant's
    /// full state — the checkpoint layer serialises these bits so a
    /// resumed run never re-spends privacy already accounted for.
    pub fn rdp_raw(&self) -> &[f64] {
        &self.rdp
    }

    /// Rebuilds an accountant bit-exactly from [`RdpAccountant::rdp_raw`]
    /// and [`RdpAccountant::steps`] snapshots. Fails if the vector does
    /// not match the `2..=max_order` grid.
    pub fn from_raw(max_order: u64, rdp: Vec<f64>, steps: u64) -> Result<Self, String> {
        let fresh = Self::new(max_order);
        if rdp.len() != fresh.orders.len() {
            return Err(format!(
                "rdp state has {} entries, grid 2..={max_order} needs {}",
                rdp.len(),
                fresh.orders.len()
            ));
        }
        Ok(Self {
            orders: fresh.orders,
            rdp,
            steps,
        })
    }

    /// Folds another accountant's accumulated loss into this one —
    /// sequential composition across *shards* of a mechanism (each
    /// shard accounts its own steps locally; the driver absorbs them in
    /// a fixed order). Additivity of RDP makes this exact.
    ///
    /// # Panics
    /// Panics if the two accountants use different order grids.
    pub fn absorb(&mut self, other: &RdpAccountant) {
        assert_eq!(
            self.orders, other.orders,
            "cannot absorb an accountant with a different order grid"
        );
        for (r, &o) in self.rdp.iter_mut().zip(&other.rdp) {
            *r += o;
        }
        self.steps += other.steps;
    }

    /// Composes shard-local accountants into one, absorbing them
    /// serially in slice order — the deterministic fixed-order reduce
    /// the out-of-core trainer's edge shards use. Returns the default
    /// (empty) accountant when `shards` is empty.
    ///
    /// # Panics
    /// Panics if the shards disagree on the order grid.
    pub fn compose(shards: &[RdpAccountant]) -> RdpAccountant {
        let mut total = match shards.first() {
            Some(s) => RdpAccountant::new(*s.orders.last().expect("non-empty grid")),
            None => RdpAccountant::default(),
        };
        for s in shards {
            total.absorb(s);
        }
        total
    }
}

/// An [`RdpAccountant`] bound to a target budget, implementing the
/// stop rule of Algorithm 2: *before* each step, ask whether spending
/// one more step would push `δ̂(ε_target)` past `δ_target`.
///
/// The per-step RDP curve is computed once at construction (it depends
/// only on `γ` and `σ`), so [`BudgetedAccountant::try_step`] is a
/// cheap vector add plus one conversion — it sits inside the training
/// loop and runs tens of thousands of times per run.
#[derive(Clone, Debug)]
pub struct BudgetedAccountant {
    inner: RdpAccountant,
    per_step: Vec<f64>,
    budget: PrivacyBudget,
    gamma: f64,
    sigma: f64,
}

impl BudgetedAccountant {
    /// Binds a fresh accountant to `budget` for a mechanism with
    /// sampling rate `gamma` and noise multiplier `sigma`.
    pub fn new(budget: PrivacyBudget, gamma: f64, sigma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
        assert!(sigma > 0.0, "sigma must be positive");
        let inner = RdpAccountant::default();
        let per_step: Vec<f64> = inner
            .orders
            .iter()
            .map(|&a| subsampled_gaussian_rdp(a, gamma, sigma))
            .collect();
        Self {
            inner,
            per_step,
            budget,
            gamma,
            sigma,
        }
    }

    /// Whether one more step keeps `δ̂(ε) < δ`. If yes, the step is
    /// recorded and `true` is returned; otherwise the accountant is
    /// left unchanged and `false` is returned (the caller stops
    /// training — Algorithm 2 line 10).
    pub fn try_step(&mut self) -> bool {
        for (r, &s) in self.inner.rdp.iter_mut().zip(&self.per_step) {
            *r += s;
        }
        self.inner.steps += 1;
        let (delta_hat, _) = self.inner.delta(self.budget.epsilon);
        if delta_hat >= self.budget.delta {
            // Roll back the trial step.
            for (r, &s) in self.inner.rdp.iter_mut().zip(&self.per_step) {
                *r -= s;
            }
            self.inner.steps -= 1;
            return false;
        }
        true
    }

    /// Maximum number of epochs that fit the budget, computed without
    /// mutating this accountant. Used by experiments to pre-size runs.
    pub fn max_epochs(&self, cap: u64) -> u64 {
        // Per-step RDP is constant, so binary search over n.
        let mut per_step = RdpAccountant::default();
        per_step.step_subsampled_gaussian(self.gamma, self.sigma);
        let fits = |n: u64| -> bool {
            let mut acc = RdpAccountant::default();
            acc.step_many(self.gamma, self.sigma, n);
            acc.delta(self.budget.epsilon).0 < self.budget.delta
        };
        if !fits(1) {
            return 0;
        }
        let (mut lo, mut hi) = (1u64, cap.max(1));
        if fits(hi) {
            return hi;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Privacy spent so far as `(ε at target δ, δ̂ at target ε)`.
    pub fn spent(&self) -> (f64, f64) {
        let (eps, _) = self.inner.epsilon(self.budget.delta);
        let (delta, _) = self.inner.delta(self.budget.epsilon);
        (eps, delta)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.inner.steps()
    }

    /// The bound budget.
    pub fn budget(&self) -> PrivacyBudget {
        self.budget
    }

    /// The raw RDP state, for checkpointing (see
    /// [`RdpAccountant::rdp_raw`]).
    pub fn rdp_raw(&self) -> &[f64] {
        self.inner.rdp_raw()
    }

    /// Largest order on the inner grid.
    pub fn max_order(&self) -> u64 {
        self.inner.max_order()
    }

    /// Rebinds a checkpointed accountant state to `(budget, gamma,
    /// sigma)`, bit-exactly. Restoring the exact accumulated RDP vector
    /// (rather than replaying `steps` additions) is what guarantees a
    /// crash/resume sequence composes to exactly the ε of the
    /// uninterrupted run — budget can never be double-spent.
    pub fn resume(
        budget: PrivacyBudget,
        gamma: f64,
        sigma: f64,
        max_order: u64,
        rdp: Vec<f64>,
        steps: u64,
    ) -> Result<Self, String> {
        let mut acc = Self::new(budget, gamma, sigma);
        let inner = RdpAccountant::from_raw(max_order, rdp, steps)?;
        if inner.rdp.len() != acc.per_step.len() {
            // `new` builds its per-step curve on the default grid; a
            // snapshot from a different grid would zip against it.
            return Err(format!(
                "checkpointed grid 2..={max_order} does not match the default grid 2..={DEFAULT_ORDERS_MAX}"
            ));
        }
        acc.inner = inner;
        Ok(acc)
    }
}

/// Smallest noise multiplier `σ` such that composing `mechanisms`
/// (unsubsampled) Gaussian mechanisms satisfies `(ε, δ)`-DP, found by
/// bisection on the RDP conversion. Used by the aggregation-
/// perturbation baselines (GAP/ProGAP) to calibrate per-hop noise.
///
/// # Panics
/// Panics if `mechanisms == 0`.
pub fn calibrate_noise_multiplier(mechanisms: u64, epsilon: f64, delta: f64) -> f64 {
    assert!(mechanisms > 0, "need at least one mechanism");
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
    let fits = |sigma: f64| -> bool {
        let mut acc = RdpAccountant::default();
        // γ = 1: the whole dataset participates in every aggregate.
        acc.step_many(1.0, sigma, mechanisms);
        acc.epsilon(delta).0 <= epsilon
    };
    let mut lo = 1e-3;
    let mut hi = 1.0;
    while !fits(hi) {
        hi *= 2.0;
        assert!(hi < 1e9, "calibration diverged");
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_meets_budget_tightly() {
        for &(m, eps) in &[(1u64, 1.0), (4, 0.5), (16, 3.5), (64, 2.0)] {
            let sigma = calibrate_noise_multiplier(m, eps, 1e-5);
            let mut acc = RdpAccountant::default();
            acc.step_many(1.0, sigma, m);
            let (spent, _) = acc.epsilon(1e-5);
            assert!(spent <= eps * 1.0001, "m={m} eps={eps}: spent {spent}");
            // Tight: 1% less noise should break the budget.
            let mut acc2 = RdpAccountant::default();
            acc2.step_many(1.0, sigma * 0.99, m);
            assert!(acc2.epsilon(1e-5).0 > eps, "calibration not tight");
        }
    }

    #[test]
    fn calibration_monotone_in_mechanism_count_and_epsilon() {
        let s1 = calibrate_noise_multiplier(1, 1.0, 1e-5);
        let s4 = calibrate_noise_multiplier(4, 1.0, 1e-5);
        assert!(s4 > s1, "more mechanisms need more noise");
        let tight = calibrate_noise_multiplier(4, 0.5, 1e-5);
        assert!(tight > s4, "smaller ε needs more noise");
    }

    #[test]
    fn composition_is_additive() {
        let mut a = RdpAccountant::new(16);
        a.step_subsampled_gaussian(0.01, 5.0);
        a.step_subsampled_gaussian(0.01, 5.0);
        let mut b = RdpAccountant::new(16);
        b.step_many(0.01, 5.0, 2);
        for ((o1, e1), (o2, e2)) in a.curve().zip(b.curve()) {
            assert_eq!(o1, o2);
            assert!((e1 - e2).abs() < 1e-15);
        }
    }

    #[test]
    fn sharded_composition_matches_monolithic_accounting() {
        // Shard-local accounting + fixed-order absorb must equal one
        // accountant stepping the same (γ, σ) sequence. Per-shard loss
        // is identical arithmetic, so the only difference is the add
        // order across shards; with equal per-step curves the absorb
        // sums are bitwise-reassociations and land within 1e-15.
        let gamma = 0.004;
        let sigma = 5.0;
        let mut mono = RdpAccountant::default();
        mono.step_many(gamma, sigma, 60);
        let shards: Vec<RdpAccountant> = [10u64, 20, 30]
            .iter()
            .map(|&n| {
                let mut s = RdpAccountant::default();
                s.step_many(gamma, sigma, n);
                s
            })
            .collect();
        let composed = RdpAccountant::compose(&shards);
        assert_eq!(composed.steps(), mono.steps());
        for ((o1, e1), (o2, e2)) in composed.curve().zip(mono.curve()) {
            assert_eq!(o1, o2);
            assert!((e1 - e2).abs() < 1e-15, "order {o1}: {e1} vs {e2}");
        }
        let (eps_c, _) = composed.epsilon(1e-5);
        let (eps_m, _) = mono.epsilon(1e-5);
        assert!((eps_c - eps_m).abs() < 1e-12);
    }

    #[test]
    fn compose_is_deterministic_and_empty_safe() {
        let empty = RdpAccountant::compose(&[]);
        assert_eq!(empty.steps(), 0);
        let mut a = RdpAccountant::new(16);
        a.step_subsampled_gaussian(0.01, 5.0);
        let mut b = RdpAccountant::new(16);
        b.step_many(0.02, 4.0, 3);
        let c1 = RdpAccountant::compose(&[a.clone(), b.clone()]);
        let c2 = RdpAccountant::compose(&[a.clone(), b.clone()]);
        for ((_, e1), (_, e2)) in c1.curve().zip(c2.curve()) {
            assert_eq!(e1.to_bits(), e2.to_bits(), "compose must be bitwise stable");
        }
        assert_eq!(c1.steps(), a.steps() + b.steps());
    }

    #[test]
    #[should_panic(expected = "different order grid")]
    fn absorb_rejects_mismatched_grids() {
        let mut a = RdpAccountant::new(16);
        let b = RdpAccountant::new(32);
        a.absorb(&b);
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let mut acc = RdpAccountant::default();
        let mut last = 0.0;
        for _ in 0..5 {
            acc.step_many(0.01, 5.0, 100);
            let (eps, _) = acc.epsilon(1e-5);
            assert!(eps > last);
            last = eps;
        }
    }

    #[test]
    fn delta_and_epsilon_are_consistent_inverses() {
        let mut acc = RdpAccountant::default();
        acc.step_many(0.004, 5.0, 500);
        let (eps, _) = acc.epsilon(1e-5);
        // δ̂ at that ε must be ≤ the δ we asked for.
        let (delta_hat, _) = acc.delta(eps);
        assert!(
            delta_hat <= 1e-5 * 1.0001,
            "delta({eps}) = {delta_hat} exceeds 1e-5"
        );
    }

    #[test]
    fn zero_steps_spends_nothing() {
        let acc = RdpAccountant::default();
        let (delta, _) = acc.delta(0.5);
        // exp((α-1)(0 - 0.5)) is minimised at the largest order; tiny.
        assert!(delta < 1e-8);
    }

    #[test]
    fn budgeted_accountant_stops_eventually() {
        // Moderate γ/σ: the budget affords a few hundred epochs, then binds.
        let b = PrivacyBudget::new(1.0, 1e-5);
        let mut acc = BudgetedAccountant::new(b, 0.01, 2.0);
        let mut n = 0;
        while acc.try_step() {
            n += 1;
            assert!(n < 100_000, "never stopped");
        }
        assert!(n > 0, "should allow at least one step");
        // After stopping, spent δ̂ is still within budget (the step that
        // would overflow was rolled back).
        let (_, delta_hat) = acc.spent();
        assert!(delta_hat < 1e-5);
    }

    #[test]
    fn budgeted_accountant_can_refuse_immediately() {
        // γ=0.5 with σ=0.7 is hopeless at ε=1: even one epoch of the
        // WBK bound overshoots, so try_step must refuse from the start.
        let b = PrivacyBudget::new(1.0, 1e-5);
        let mut acc = BudgetedAccountant::new(b, 0.5, 0.7);
        assert!(!acc.try_step());
        assert_eq!(acc.steps(), 0);
        assert_eq!(acc.max_epochs(1000), 0);
    }

    #[test]
    fn budgeted_accountant_larger_epsilon_allows_more_epochs() {
        let gamma = 128.0 / 31421.0;
        let sigma = 5.0;
        let small = BudgetedAccountant::new(PrivacyBudget::new(0.5, 1e-5), gamma, sigma);
        let large = BudgetedAccountant::new(PrivacyBudget::new(3.5, 1e-5), gamma, sigma);
        let n_small = small.max_epochs(1_000_000);
        let n_large = large.max_epochs(1_000_000);
        assert!(
            n_large > n_small,
            "ε=3.5 must buy more epochs than ε=0.5 ({n_large} vs {n_small})"
        );
        assert!(
            n_small > 0,
            "even ε=0.5 affords some epochs in paper regime"
        );
    }

    #[test]
    fn max_epochs_matches_try_step_loop() {
        let b = PrivacyBudget::new(0.8, 1e-5);
        let mut stepper = BudgetedAccountant::new(b, 0.05, 1.5);
        let predicted = stepper.max_epochs(100_000);
        let mut n = 0;
        while stepper.try_step() {
            n += 1;
        }
        assert_eq!(n, predicted);
    }

    #[test]
    fn paper_regime_fits_full_training() {
        // σ=5, δ=1e-5, γ=128/31421: the paper trains 200 epochs for
        // StrucEqu and 2000 for link prediction. Even ε=3.5 should
        // allow well beyond 2000 epochs in this regime — the budget
        // binds at small ε (this is what Figs. 3–4 vary).
        let gamma = 128.0 / 31421.0;
        let acc = BudgetedAccountant::new(PrivacyBudget::new(3.5, 1e-5), gamma, 5.0);
        assert!(acc.max_epochs(1_000_000) >= 2000);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn budget_rejects_bad_delta() {
        PrivacyBudget::new(1.0, 1.5);
    }
}
