//! # sp-dp
//!
//! Differential-privacy substrate for SE-PrivGEmb.
//!
//! Implements the full privacy stack of the paper's §II-B/§II-C/§V:
//!
//! - [`noise`]: a seeded standard-normal sampler (Marsaglia polar) and
//!   the Gaussian mechanism that perturbs slices/rows;
//! - [`clip`]: ℓ2 clipping of per-example gradients that are spread
//!   over several non-contiguous rows (the skip-gram case, where one
//!   example touches `1` row of `W_in` and `k+1` rows of `W_out`);
//! - [`rdp`]: Rényi-DP curves of the Gaussian mechanism and of the
//!   *subsampled* Gaussian mechanism under sampling **without
//!   replacement** (Wang, Balle, Kasiviswanathan 2019 — the paper's
//!   Theorem 4), evaluated entirely in log space;
//! - [`accountant`]: per-order RDP composition over training epochs,
//!   RDP→(ε, δ) conversion (the paper's Theorem 1), and the budgeted
//!   accountant implementing Algorithm 2's stop condition
//!   (`δ̂ ≥ δ` ⇒ stop).
//!
//! All randomness flows through caller-provided `rand::Rng` values so
//! experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod clip;
pub mod noise;
pub mod rdp;

pub use accountant::{
    calibrate_noise_multiplier, BudgetedAccountant, PrivacyBudget, RdpAccountant,
    DEFAULT_ORDERS_MAX,
};
pub use noise::GaussianSampler;
pub use rdp::{gaussian_rdp, subsampled_gaussian_rdp};
