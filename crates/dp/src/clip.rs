//! ℓ2 clipping of per-example gradients (Eq. 3 of the paper).
//!
//! The subtlety in skip-gram is that one training example (a subgraph
//! `S_b` from Algorithm 1) produces a gradient that lives in several
//! non-contiguous rows: one row of `W_in` (the centre vector `v_i`,
//! Eq. 7) and `k+1` rows of `W_out` (the positive and negative context
//! vectors, Eq. 8). DPSGD clips *the whole per-example gradient* to
//! norm `C`, so the norm must be taken jointly over all the parts —
//! clipping each row independently would change the sensitivity
//! analysis. [`clip_parts`] implements exactly that joint clip.

use sp_linalg::vector;

/// Joint Euclidean norm over a collection of disjoint gradient parts.
pub fn parts_norm(parts: &[&[f64]]) -> f64 {
    parts
        .iter()
        .map(|p| vector::norm2_sq(p))
        .sum::<f64>()
        .sqrt()
}

/// Clips the concatenation of `parts` to joint ℓ2 norm at most `c`,
/// scaling every part by the same factor (DPSGD's `Clip`, Eq. 3).
/// Returns the factor applied (`1.0` when under the threshold).
pub fn clip_parts(parts: &mut [&mut [f64]], c: f64) -> f64 {
    assert!(c > 0.0, "clip threshold must be positive, got {c}");
    let norm = parts
        .iter()
        .map(|p| vector::norm2_sq(p))
        .sum::<f64>()
        .sqrt();
    if norm > c {
        let f = c / norm;
        for p in parts.iter_mut() {
            vector::scale(f, p);
        }
        f
    } else {
        1.0
    }
}

/// Clips a single contiguous gradient (`Clip(g) = g / max(1, ‖g‖₂/C)`).
pub fn clip_single(g: &mut [f64], c: f64) -> f64 {
    vector::clip_norm(g, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_norm_over_parts() {
        let a = [3.0, 0.0];
        let b = [0.0, 4.0];
        assert!((parts_norm(&[&a, &b]) - 5.0).abs() < 1e-12);
        assert_eq!(parts_norm(&[]), 0.0);
    }

    #[test]
    fn clip_parts_is_joint_not_per_part() {
        // Each part alone has norm 3 < C=4, but jointly 3√2 > 4:
        // a per-part clip would do nothing; the joint clip must scale.
        let mut a = [3.0, 0.0];
        let mut b = [0.0, 3.0];
        let f = clip_parts(&mut [&mut a, &mut b], 4.0);
        assert!(f < 1.0);
        let joint = (a[0] * a[0] + b[1] * b[1]).sqrt();
        assert!((joint - 4.0).abs() < 1e-12, "joint norm {joint}");
    }

    #[test]
    fn clip_parts_noop_under_threshold() {
        let mut a = [1.0, 0.0];
        let mut b = [0.0, 1.0];
        let f = clip_parts(&mut [&mut a, &mut b], 10.0);
        assert_eq!(f, 1.0);
        assert_eq!(a, [1.0, 0.0]);
        assert_eq!(b, [0.0, 1.0]);
    }

    #[test]
    fn clip_parts_uniform_scaling_preserves_direction() {
        let mut a = [2.0, -2.0];
        let mut b = [1.0, 5.0];
        let orig_ratio = a[0] / b[1];
        clip_parts(&mut [&mut a, &mut b], 0.5);
        assert!((a[0] / b[1] - orig_ratio).abs() < 1e-12);
    }

    #[test]
    fn clip_single_matches_dpsgd_formula() {
        let mut g = vec![6.0, 8.0]; // norm 10
        let f = clip_single(&mut g, 2.0);
        assert!((f - 0.2).abs() < 1e-12);
        assert!((vector::norm2(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_threshold() {
        let mut a = [1.0];
        clip_parts(&mut [&mut a], -1.0);
    }
}
