//! Rényi-DP curves.
//!
//! Two mechanisms matter for the paper:
//!
//! 1. The plain **Gaussian mechanism** with noise `N(0, S²σ²I)`:
//!    `(α, α/(2σ²))`-RDP for every `α > 1` (Mironov 2017, Corollary 3;
//!    note the sensitivity cancels because the noise is calibrated to
//!    it — `σ` here is the *noise multiplier*).
//! 2. The **subsampled Gaussian mechanism** under sampling *without
//!    replacement* with rate `γ = B/|E|`: the paper's Theorem 4
//!    (Wang, Balle, Kasiviswanathan, AISTATS 2019, Theorem 9) gives an
//!    upper bound on `ε'(α)` for integer `α ≥ 2`:
//!
//!    ```text
//!    ε'(α) ≤ 1/(α-1) · ln( 1
//!        + γ² C(α,2) min{ 4(e^{ε(2)}-1), e^{ε(2)} min{2, (e^{ε(∞)}-1)²} }
//!        + Σ_{j=3..α} γ^j C(α,j) e^{(j-1)ε(j)} min{2, (e^{ε(∞)}-1)^j} )
//!    ```
//!
//!    For the Gaussian mechanism `ε(∞) = ∞`, so the inner `min`
//!    factors collapse to `min{4(e^{ε(2)}-1), 2e^{ε(2)}}` and `2`
//!    respectively. The sum spans up to `C(α, j) γ^j e^{(j-1)·j/(2σ²)}`
//!    which overflows `f64` long before the α range of interest, so we
//!    evaluate every term in log space and combine with `logsumexp`.
//!
//! Both curves are exposed per integer order; the accountant composes
//! them across epochs (RDP composition is additive per order).

use sp_linalg::stats::{log_binomial, logsumexp};

/// RDP of the (unsubsampled) Gaussian mechanism at order `alpha`:
/// `ε(α) = α / (2σ²)` where `sigma` is the noise multiplier
/// (noise std = `sigma × sensitivity`).
///
/// # Panics
/// Panics if `sigma <= 0` or `alpha <= 1`.
pub fn gaussian_rdp(alpha: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "noise multiplier must be positive");
    assert!(alpha > 1.0, "RDP order must exceed 1");
    alpha / (2.0 * sigma * sigma)
}

/// Upper bound on the RDP at integer order `alpha >= 2` of the
/// Gaussian mechanism with noise multiplier `sigma`, subsampled
/// without replacement at rate `gamma ∈ [0, 1]` (paper Theorem 4).
///
/// The bound is tightened by `min`-ing with the unsubsampled curve
/// (subsampling can only improve privacy) — the raw ternary bound is
/// loose for `γ` near 1.
pub fn subsampled_gaussian_rdp(alpha: u64, gamma: f64, sigma: f64) -> f64 {
    assert!(alpha >= 2, "the WBK bound needs integer alpha >= 2");
    assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    if gamma == 0.0 {
        // The changed record is never sampled: no privacy loss.
        return 0.0;
    }
    let eps = |j: f64| gaussian_rdp(j, sigma);
    let ln_gamma_rate = gamma.ln();

    // j = 2 term: γ² C(α,2) min{4(e^{ε(2)}-1), 2 e^{ε(2)}}.
    let e2 = eps(2.0);
    let ln_min2 = {
        // ln(4(e^{ε2}-1)) computed via exp_m1 for small ε2 accuracy.
        let a = (4.0 * e2.exp_m1()).ln();
        let b = std::f64::consts::LN_2 + e2; // ln(2 e^{ε2})
        a.min(b)
    };
    let mut log_terms: Vec<f64> = Vec::with_capacity(alpha as usize);
    log_terms.push(2.0 * ln_gamma_rate + log_binomial(alpha, 2) + ln_min2);

    // j >= 3 terms: γ^j C(α,j) e^{(j-1)ε(j)} · 2.
    for j in 3..=alpha {
        let jf = j as f64;
        let term = jf * ln_gamma_rate
            + log_binomial(alpha, j)
            + (jf - 1.0) * eps(jf)
            + std::f64::consts::LN_2;
        log_terms.push(term);
    }

    let log_sum = logsumexp(&log_terms);
    // ε'(α) = ln(1 + e^{log_sum}) / (α - 1), via softplus for stability.
    let softplus = if log_sum > 30.0 {
        log_sum
    } else {
        log_sum.exp().ln_1p()
    };
    let bound = softplus / (alpha as f64 - 1.0);

    // Subsampling never hurts: cap with the unsubsampled curve.
    bound.min(gaussian_rdp(alpha as f64, sigma))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_rdp_formula() {
        assert!((gaussian_rdp(2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((gaussian_rdp(10.0, 5.0) - 10.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must exceed 1")]
    fn gaussian_rdp_rejects_low_alpha() {
        gaussian_rdp(1.0, 1.0);
    }

    #[test]
    fn zero_sampling_rate_means_zero_loss() {
        assert_eq!(subsampled_gaussian_rdp(8, 0.0, 5.0), 0.0);
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // At small γ the subsampled loss must be far below the plain loss.
        for &alpha in &[2u64, 4, 8, 16, 32] {
            let sub = subsampled_gaussian_rdp(alpha, 0.004, 5.0);
            let plain = gaussian_rdp(alpha as f64, 5.0);
            assert!(
                sub < plain / 10.0,
                "alpha={alpha}: subsampled {sub} not ≪ plain {plain}"
            );
        }
    }

    #[test]
    fn monotone_in_gamma() {
        let mut last = 0.0;
        for &g in &[0.001, 0.01, 0.05, 0.1, 0.3] {
            let e = subsampled_gaussian_rdp(8, g, 5.0);
            assert!(e >= last, "not monotone at gamma={g}: {e} < {last}");
            last = e;
        }
    }

    #[test]
    fn monotone_in_sigma() {
        let mut last = f64::INFINITY;
        for &s in &[0.5, 1.0, 2.0, 5.0, 10.0] {
            let e = subsampled_gaussian_rdp(8, 0.01, s);
            assert!(e <= last, "not decreasing at sigma={s}");
            last = e;
        }
    }

    #[test]
    fn quadratic_scaling_in_small_gamma_regime() {
        // For small γ the j=2 term dominates: halving γ should shrink
        // ε'(α) by roughly 4x.
        let e1 = subsampled_gaussian_rdp(4, 0.02, 5.0);
        let e2 = subsampled_gaussian_rdp(4, 0.01, 5.0);
        let ratio = e1 / e2;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x shrink, got {ratio}"
        );
    }

    #[test]
    fn capped_by_unsubsampled_curve_at_gamma_one() {
        for &alpha in &[2u64, 8, 64] {
            let sub = subsampled_gaussian_rdp(alpha, 1.0, 5.0);
            let plain = gaussian_rdp(alpha as f64, 5.0);
            assert!(sub <= plain + 1e-12);
        }
    }

    #[test]
    fn large_alpha_stays_finite() {
        // The naive (linear-space) evaluation overflows around α ~ 200
        // with these parameters; the log-space path must not.
        let e = subsampled_gaussian_rdp(1024, 0.05, 1.0);
        assert!(e.is_finite());
        assert!(e > 0.0);
    }

    #[test]
    fn paper_parameter_regime_is_tiny_per_step() {
        // Paper defaults: σ=5, B=128, |E|≈31k (Chameleon) ⇒ γ≈0.004.
        // Per-epoch RDP at moderate orders must be ≪ 1e-3 so that 200
        // epochs fit a single-digit ε budget — sanity for Alg. 2.
        let gamma = 128.0 / 31421.0;
        let e = subsampled_gaussian_rdp(16, gamma, 5.0);
        assert!(e < 1e-3, "per-step ε'(16) = {e}");
    }
}
