//! Property-based tests for the DP substrate: clipping invariants and
//! accountant monotonicity over randomly drawn parameter ranges.

use proptest::prelude::*;
use sp_dp::clip::{clip_parts, parts_norm};
use sp_dp::{gaussian_rdp, subsampled_gaussian_rdp, RdpAccountant};

proptest! {
    #[test]
    fn clipping_never_exceeds_threshold(
        a in proptest::collection::vec(-50.0f64..50.0, 1..16),
        b in proptest::collection::vec(-50.0f64..50.0, 1..16),
        c in 0.01f64..20.0,
    ) {
        let mut a = a;
        let mut b = b;
        clip_parts(&mut [&mut a, &mut b], c);
        prop_assert!(parts_norm(&[&a, &b]) <= c + 1e-9);
    }

    #[test]
    fn clipping_is_idempotent(
        a in proptest::collection::vec(-50.0f64..50.0, 1..16),
        c in 0.01f64..20.0,
    ) {
        let mut once = a.clone();
        clip_parts(&mut [&mut once], c);
        let mut twice = once.clone();
        // The first clip lands the norm at exactly c up to rounding; a
        // second clip may rescale by 1 - O(ε_machine). Idempotence
        // therefore holds to floating-point tolerance, not bit-for-bit.
        let factor = clip_parts(&mut [&mut twice], c);
        prop_assert!((factor - 1.0).abs() < 1e-9, "second clip factor {factor}");
        for (x, y) in once.iter().zip(&twice) {
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn gaussian_rdp_scales_linearly_in_alpha(alpha in 2.0f64..128.0, sigma in 0.5f64..20.0) {
        let e1 = gaussian_rdp(alpha, sigma);
        let e2 = gaussian_rdp(2.0 * alpha, sigma);
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn subsampled_bound_below_unsubsampled(
        alpha in 2u64..64,
        gamma in 0.0001f64..1.0,
        sigma in 0.5f64..10.0,
    ) {
        let sub = subsampled_gaussian_rdp(alpha, gamma, sigma);
        let plain = gaussian_rdp(alpha as f64, sigma);
        prop_assert!(sub <= plain + 1e-12);
        prop_assert!(sub >= 0.0);
        prop_assert!(sub.is_finite());
    }

    #[test]
    fn rdp_monotone_in_gamma(
        alpha in 2u64..32,
        g1 in 0.001f64..0.5,
        sigma in 1.0f64..10.0,
    ) {
        let g2 = (g1 * 1.5).min(1.0);
        let e1 = subsampled_gaussian_rdp(alpha, g1, sigma);
        let e2 = subsampled_gaussian_rdp(alpha, g2, sigma);
        prop_assert!(e2 >= e1 - 1e-12, "γ {g1}->{g2}: {e1} -> {e2}");
    }

    #[test]
    fn epsilon_conversion_monotone_in_steps(
        gamma in 0.001f64..0.1,
        sigma in 1.0f64..10.0,
        n1 in 1u64..500,
    ) {
        let n2 = n1 * 2;
        let eps_of = |n: u64| {
            let mut acc = RdpAccountant::default();
            acc.step_many(gamma, sigma, n);
            acc.epsilon(1e-5).0
        };
        prop_assert!(eps_of(n2) >= eps_of(n1));
    }

    #[test]
    fn epsilon_conversion_monotone_in_delta(
        gamma in 0.001f64..0.1,
        sigma in 1.0f64..10.0,
        steps in 1u64..500,
    ) {
        let mut acc = RdpAccountant::default();
        acc.step_many(gamma, sigma, steps);
        // Weaker δ requirement ⇒ smaller ε.
        let (eps_strict, _) = acc.epsilon(1e-8);
        let (eps_loose, _) = acc.epsilon(1e-3);
        prop_assert!(eps_loose <= eps_strict);
    }

    #[test]
    fn delta_and_epsilon_conversions_are_consistent(
        gamma in 0.001f64..0.1,
        sigma in 1.0f64..10.0,
        steps in 1u64..300,
    ) {
        let mut acc = RdpAccountant::default();
        acc.step_many(gamma, sigma, steps);
        let (eps, _) = acc.epsilon(1e-5);
        let (delta_hat, _) = acc.delta(eps * 1.000001);
        prop_assert!(delta_hat <= 1e-5 * 1.01, "δ({eps}) = {delta_hat}");
    }
}
