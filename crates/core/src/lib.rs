//! # se-privgemb
//!
//! **SE-PrivGEmb**: Structure-Preference Enabled Graph Embedding
//! Generation under Differential Privacy — a Rust implementation of
//! Zhang, Ye & Hu (ICDE 2025).
//!
//! SE-PrivGEmb learns low-dimensional node vectors with three
//! guarantees:
//!
//! 1. **Node-level Rényi DP**: the published embedding matrices are
//!    the output of noisy SGD over skip-gram subgraphs, accounted with
//!    the subsampled-Gaussian RDP bound and converted to `(ε, δ)`-DP;
//! 2. **Noise tolerance**: only gradient rows actually touched by a
//!    batch are perturbed (sensitivity `C` instead of the naive
//!    `B·C`), which is what keeps utility alive at single-digit ε;
//! 3. **Structure preference**: the skip-gram objective is weighted by
//!    an arbitrary node proximity `p_ij`, and with Algorithm 1's
//!    negative sampling the optimal inner products are provably
//!    `log(p_ij / (k·min(P)))` (Theorem 3) — pick the proximity that
//!    matches your mining objective and the embedding preserves it.
//!
//! ## Quickstart
//!
//! ```
//! use se_privgemb::{SePrivGEmb, ProximityKind};
//! use sp_graph::Graph;
//!
//! // A toy graph: two triangles joined by a bridge.
//! let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2),
//!                               (3, 4), (4, 5), (3, 5), (2, 3)]);
//!
//! let result = SePrivGEmb::builder()
//!     .dim(16)
//!     .proximity(ProximityKind::deepwalk_default())
//!     .epsilon(3.5)
//!     .epochs(20)
//!     .seed(7)
//!     .build()
//!     .fit(&g);
//!
//! assert_eq!(result.embeddings().rows(), 6);
//! assert!(result.report.epsilon_spent <= 3.5);
//! ```
//!
//! The heavy lifting lives in the substrate crates, re-exported here:
//! [`sp_skipgram`] (model/trainer), [`sp_proximity`] (preferences),
//! [`sp_dp`] (noise + accounting), [`sp_eval`] (StrucEqu, link
//! prediction), [`sp_graph`] (graph type).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod pipeline;
pub mod presets;

pub use pipeline::{CheckpointedEmbedding, EmbeddingResult, SePrivGEmb, SePrivGEmbBuilder};
pub use sp_proximity::ProximityKind;
pub use sp_skipgram::{NegativeSampling, PerturbStrategy, TrainConfig, TrainReport};

// Substrate re-exports, so `se-privgemb` is a one-stop dependency.
pub use sp_dp as dp;
pub use sp_eval as eval;
pub use sp_graph as graph;
pub use sp_linalg as linalg;
pub use sp_mem as mem;
pub use sp_proximity as proximity;
pub use sp_skipgram as skipgram;
