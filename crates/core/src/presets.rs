//! Ready-made configurations reproducing the paper's experimental
//! setups (§VI-A): "we set the same parameters for structural
//! equivalence and link prediction except for the training epochs
//! (200 vs 2000)".

use crate::pipeline::{SePrivGEmb, SePrivGEmbBuilder};
use sp_proximity::ProximityKind;

/// The paper's common parameter block: r=128, k=5, B=128, η=0.1, C=2,
/// σ=5, δ=1e-5.
fn paper_base(epsilon: f64) -> SePrivGEmbBuilder {
    SePrivGEmb::builder()
        .dim(128)
        .negatives(5)
        .batch_size(128)
        .learning_rate(0.1)
        .clip(2.0)
        .sigma(5.0)
        .delta(1e-5)
        .epsilon(epsilon)
}

/// `SE-PrivGEmb_DW` for structural equivalence (200 epochs).
pub fn strucequ_dw(epsilon: f64, seed: u64) -> SePrivGEmb {
    paper_base(epsilon)
        .proximity(ProximityKind::deepwalk_default())
        .epochs(200)
        .seed(seed)
        .build()
}

/// `SE-PrivGEmb_Deg` for structural equivalence (200 epochs).
pub fn strucequ_deg(epsilon: f64, seed: u64) -> SePrivGEmb {
    paper_base(epsilon)
        .proximity(ProximityKind::Degree)
        .epochs(200)
        .seed(seed)
        .build()
}

/// `SE-PrivGEmb_DW` for link prediction (2000 epochs).
pub fn linkpred_dw(epsilon: f64, seed: u64) -> SePrivGEmb {
    paper_base(epsilon)
        .proximity(ProximityKind::deepwalk_default())
        .epochs(2000)
        .seed(seed)
        .build()
}

/// `SE-PrivGEmb_Deg` for link prediction (2000 epochs).
pub fn linkpred_deg(epsilon: f64, seed: u64) -> SePrivGEmb {
    paper_base(epsilon)
        .proximity(ProximityKind::Degree)
        .epochs(2000)
        .seed(seed)
        .build()
}

/// The ε grid of Figs. 3–4: `{0.5, 1, 1.5, 2, 2.5, 3, 3.5}`.
pub fn epsilon_grid() -> [f64; 7] {
    [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_skipgram::PerturbStrategy;

    #[test]
    fn presets_match_paper_parameters() {
        let m = strucequ_dw(3.5, 1);
        let c = m.train_config();
        assert_eq!(c.dim, 128);
        assert_eq!(c.negatives, 5);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.learning_rate, 0.1);
        assert_eq!(c.clip, 2.0);
        assert_eq!(c.sigma, 5.0);
        assert_eq!(c.delta, 1e-5);
        assert_eq!(c.epochs, 200);
        assert_eq!(c.strategy, PerturbStrategy::NonZero);
        assert_eq!(m.proximity_kind(), ProximityKind::deepwalk_default());
    }

    #[test]
    fn linkpred_presets_use_2000_epochs() {
        assert_eq!(linkpred_dw(1.0, 1).train_config().epochs, 2000);
        assert_eq!(linkpred_deg(1.0, 1).train_config().epochs, 2000);
    }

    #[test]
    fn deg_preset_uses_degree_proximity() {
        assert_eq!(strucequ_deg(1.0, 1).proximity_kind(), ProximityKind::Degree);
    }

    #[test]
    fn epsilon_grid_matches_paper() {
        let g = epsilon_grid();
        assert_eq!(g.len(), 7);
        assert_eq!(g[0], 0.5);
        assert_eq!(g[6], 3.5);
        for w in g.windows(2) {
            assert!((w[1] - w[0] - 0.5).abs() < 1e-12);
        }
    }
}
