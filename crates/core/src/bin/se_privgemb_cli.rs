//! Command-line front end: train SE-PrivGEmb on an edge-list file and
//! write the private embeddings as TSV.
//!
//! ```text
//! se_privgemb_cli --input graph.txt --output emb.tsv \
//!     --dim 128 --epsilon 3.5 --epochs 200 --proximity dw --seed 1
//! ```
//!
//! The input format is one `u v` pair per line (`#`/`%` comments
//! allowed, arbitrary integer ids — compacted on load). The output is
//! one row per node: `node_id \t x_1 \t ... \t x_r`, using the
//! original ids.

use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    input: String,
    output: String,
    dim: usize,
    epsilon: f64,
    delta: f64,
    epochs: usize,
    proximity: ProximityKind,
    seed: u64,
    non_private: bool,
}

fn usage() -> &'static str {
    "usage: se_privgemb_cli --input <edge-list> --output <tsv>\n\
     \t[--dim 128] [--epsilon 3.5] [--delta 1e-5] [--epochs 200]\n\
     \t[--proximity dw|deg|cn|aa|ra|pa] [--seed 1] [--non-private]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        output: String::new(),
        dim: 128,
        epsilon: 3.5,
        delta: 1e-5,
        epochs: 200,
        proximity: ProximityKind::deepwalk_default(),
        seed: 1,
        non_private: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--input" => args.input = value(&mut i)?,
            "--output" => args.output = value(&mut i)?,
            "--dim" => args.dim = value(&mut i)?.parse().map_err(|e| format!("--dim: {e}"))?,
            "--epsilon" => {
                args.epsilon = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--delta" => {
                args.delta = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--epochs" => {
                args.epochs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--proximity" => {
                args.proximity = match value(&mut i)?.as_str() {
                    "dw" => ProximityKind::deepwalk_default(),
                    "deg" => ProximityKind::Degree,
                    "cn" => ProximityKind::CommonNeighbors,
                    "aa" => ProximityKind::AdamicAdar,
                    "ra" => ProximityKind::ResourceAllocation,
                    "pa" => ProximityKind::PreferentialAttachment,
                    other => return Err(format!("unknown proximity {other:?}")),
                }
            }
            "--non-private" => args.non_private = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if args.input.is_empty() || args.output.is_empty() {
        return Err(format!("--input and --output are required\n{}", usage()));
    }
    Ok(args)
}

#[allow(clippy::needless_range_loop)]
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let (g, id_map) = match sp_graph::io::read_edge_list_file(&args.input) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("failed to read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} nodes, {} edges",
        args.input,
        g.num_nodes(),
        g.num_edges()
    );

    let mut builder = SePrivGEmb::builder()
        .dim(args.dim)
        .epochs(args.epochs)
        .proximity(args.proximity)
        .seed(args.seed);
    if args.non_private {
        builder = builder.strategy(PerturbStrategy::None);
    } else {
        builder = builder.epsilon(args.epsilon).delta(args.delta);
    }
    let result = builder.build().fit(&g);
    eprintln!(
        "trained: {} epochs ({} steps), ε spent = {:.4}, stopped by budget: {}",
        result.report.epochs_run,
        result.report.steps_run,
        result.report.epsilon_spent,
        result.report.stopped_by_budget
    );

    // Invert the id map so output rows carry the original ids.
    let mut original: Vec<u64> = vec![0; g.num_nodes()];
    for (&orig, &dense) in &id_map {
        original[dense as usize] = orig;
    }
    let emb = result.embeddings();
    let out = match std::fs::File::create(&args.output) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", args.output);
            return ExitCode::FAILURE;
        }
    };
    let mut w = std::io::BufWriter::new(out);
    for v in 0..g.num_nodes() {
        let mut line = original[v].to_string();
        for x in emb.row(v) {
            line.push('\t');
            line.push_str(&format!("{x:.6}"));
        }
        if writeln!(w, "{line}").is_err() {
            eprintln!("write error on {}", args.output);
            return ExitCode::FAILURE;
        }
    }
    if w.flush().is_err() {
        eprintln!("flush error on {}", args.output);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} embeddings of dimension {} to {}",
        g.num_nodes(),
        args.dim,
        args.output
    );
    ExitCode::SUCCESS
}
