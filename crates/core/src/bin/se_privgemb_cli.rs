//! Command-line front end: train SE-PrivGEmb on an edge-list file and
//! write the private embeddings as TSV.
//!
//! ```text
//! se_privgemb_cli --input graph.txt --output emb.tsv \
//!     --dim 128 --epsilon 3.5 --epochs 200 --proximity dw --seed 1
//! se_privgemb_cli --dataset arxiv --data-dir ./data --output emb.tsv
//! ```
//!
//! `--input` takes a SNAP/KONECT-style edge list — `u v` pairs split
//! by spaces, tabs, or commas; `#`/`%` comments; arbitrary integer
//! ids (compacted on load); `.gz` files are decompressed
//! transparently. Alternatively `--dataset` names one of the six
//! paper graphs: the real edge list is loaded from `--data-dir` when
//! present there, and the seeded synthetic stand-in (at `--scale`) is
//! generated otherwise. The output is one row per node:
//! `node_id \t x_1 \t ... \t x_r`, using the original ids.

use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use sp_datasets::PaperDataset;
use sp_graph::io::ReadOptions;
use sp_graph::Graph;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: String,
    dataset: Option<PaperDataset>,
    data_dir: Option<PathBuf>,
    scale: f64,
    output: String,
    dim: usize,
    epsilon: f64,
    delta: f64,
    epochs: usize,
    proximity: ProximityKind,
    seed: u64,
    non_private: bool,
}

fn usage() -> &'static str {
    "usage: se_privgemb_cli (--input <edge-list[.gz]> | --dataset <name>) --output <tsv>\n\
     \t[--data-dir <dir>] [--scale 1.0] [--dim 128] [--epsilon 3.5]\n\
     \t[--delta 1e-5] [--epochs 200] [--proximity dw|deg|cn|aa|ra|pa]\n\
     \t[--seed 1] [--non-private]\n\
     \t<name>: chameleon|ppi|power|arxiv|blogcatalog|dblp (real file from\n\
     \t--data-dir when present, seeded synthetic stand-in otherwise)"
}

fn parse_dataset(name: &str) -> Result<PaperDataset, String> {
    match name.to_ascii_lowercase().as_str() {
        "chameleon" => Ok(PaperDataset::Chameleon),
        "ppi" => Ok(PaperDataset::Ppi),
        "power" => Ok(PaperDataset::Power),
        "arxiv" => Ok(PaperDataset::Arxiv),
        "blogcatalog" => Ok(PaperDataset::BlogCatalog),
        "dblp" => Ok(PaperDataset::Dblp),
        other => Err(format!("unknown dataset {other:?}\n{}", usage())),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        dataset: None,
        data_dir: None,
        scale: 1.0,
        output: String::new(),
        dim: 128,
        epsilon: 3.5,
        delta: 1e-5,
        epochs: 200,
        proximity: ProximityKind::deepwalk_default(),
        seed: 1,
        non_private: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--input" => args.input = value(&mut i)?,
            "--dataset" => args.dataset = Some(parse_dataset(&value(&mut i)?)?),
            "--data-dir" => args.data_dir = Some(PathBuf::from(value(&mut i)?)),
            "--scale" => {
                args.scale = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--output" => args.output = value(&mut i)?,
            "--dim" => args.dim = value(&mut i)?.parse().map_err(|e| format!("--dim: {e}"))?,
            "--epsilon" => {
                args.epsilon = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--delta" => {
                args.delta = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--epochs" => {
                args.epochs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--proximity" => {
                args.proximity = match value(&mut i)?.as_str() {
                    "dw" => ProximityKind::deepwalk_default(),
                    "deg" => ProximityKind::Degree,
                    "cn" => ProximityKind::CommonNeighbors,
                    "aa" => ProximityKind::AdamicAdar,
                    "ra" => ProximityKind::ResourceAllocation,
                    "pa" => ProximityKind::PreferentialAttachment,
                    other => return Err(format!("unknown proximity {other:?}")),
                }
            }
            "--non-private" => args.non_private = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if args.input.is_empty() == args.dataset.is_none() {
        return Err(format!(
            "exactly one of --input and --dataset is required\n{}",
            usage()
        ));
    }
    if args.output.is_empty() {
        return Err(format!("--output is required\n{}", usage()));
    }
    Ok(args)
}

/// The graph to train on plus each dense id's original label.
fn provision(args: &Args) -> Result<(Graph, Vec<u64>, String), String> {
    let opts = ReadOptions {
        enforce_declared_counts: true,
        skip_column_header: true,
        ..ReadOptions::default()
    };
    let from_file = |path: &std::path::Path| -> Result<(Graph, Vec<u64>, String), String> {
        let doc = sp_datasets::loaders::load_edge_list_path(path, opts)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let mut original: Vec<u64> = vec![0; doc.id_map.len()];
        for (&orig, &dense) in &doc.id_map {
            original[dense as usize] = orig;
        }
        Ok((doc.graph, original, path.display().to_string()))
    };
    match args.dataset {
        None => from_file(std::path::Path::new(&args.input)),
        Some(ds) => {
            if let Some(dir) = &args.data_dir {
                if let Some(path) = ds.locate(dir) {
                    return from_file(&path);
                }
                eprintln!(
                    "note: no {} edge list under {}; generating the synthetic stand-in",
                    ds.name(),
                    dir.display()
                );
            }
            let g = ds.generate(args.scale, args.seed);
            let original = (0..g.num_nodes() as u64).collect();
            let label = format!("{} (synthetic, scale {})", ds.name(), args.scale);
            Ok((g, original, label))
        }
    }
}

#[allow(clippy::needless_range_loop)]
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let (g, original, source) = match provision(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {source}: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let mut builder = SePrivGEmb::builder()
        .dim(args.dim)
        .epochs(args.epochs)
        .proximity(args.proximity)
        .seed(args.seed);
    if args.non_private {
        builder = builder.strategy(PerturbStrategy::None);
    } else {
        builder = builder.epsilon(args.epsilon).delta(args.delta);
    }
    let result = builder.build().fit(&g);
    eprintln!(
        "trained: {} epochs ({} steps), ε spent = {:.4}, stopped by budget: {}",
        result.report.epochs_run,
        result.report.steps_run,
        result.report.epsilon_spent,
        result.report.stopped_by_budget
    );

    let emb = result.embeddings();
    let out = match std::fs::File::create(&args.output) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", args.output);
            return ExitCode::FAILURE;
        }
    };
    let mut w = std::io::BufWriter::new(out);
    for v in 0..g.num_nodes() {
        let mut line = original[v].to_string();
        for x in emb.row(v) {
            line.push('\t');
            line.push_str(&format!("{x:.6}"));
        }
        if writeln!(w, "{line}").is_err() {
            eprintln!("write error on {}", args.output);
            return ExitCode::FAILURE;
        }
    }
    if w.flush().is_err() {
        eprintln!("flush error on {}", args.output);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} embeddings of dimension {} to {}",
        g.num_nodes(),
        args.dim,
        args.output
    );
    ExitCode::SUCCESS
}
