//! Command-line front end: train SE-PrivGEmb on an edge-list file and
//! publish the private embeddings — then query them back.
//!
//! ```text
//! # Train and publish (TSV dump, or the binary .spm model format):
//! se_privgemb_cli --input graph.txt --output emb.tsv \
//!     --dim 128 --epsilon 3.5 --epochs 200 --proximity dw --seed 1
//! se_privgemb_cli --dataset arxiv --output model.spm --output-format model
//!
//! # Serve queries against a published model (zero privacy cost):
//! se_privgemb_cli query --model model.spm --node 3 --k 10
//! se_privgemb_cli query --model model.spm --node 3 --k 10 \
//!     --ivf-nlist 32 --nprobe 4 --check-recall 0.9
//! se_privgemb_cli query --model model.spm --link 3 17
//!
//! # Serve the model over TCP (SPSERVE 1 line protocol):
//! se_privgemb_cli serve --model model.spm --listen 127.0.0.1:7878 \
//!     --ivf-nlist 32 --nprobe 4 --max-conns 64
//! ```
//!
//! `--input` takes a SNAP/KONECT-style edge list — `u v` pairs split
//! by spaces, tabs, or commas; `#`/`%` comments; arbitrary integer
//! ids (compacted on load); `.gz` files are decompressed
//! transparently. Alternatively `--dataset` names one of the six
//! paper graphs: the real edge list is loaded from `--data-dir` when
//! present there, and the seeded synthetic stand-in (at `--scale`) is
//! generated otherwise. TSV output is one row per node:
//! `node_id \t x_1 \t ... \t x_r`, using the original ids; model
//! output is the versioned, checksummed `sp_model` format holding both
//! skip-gram matrices and the run's provenance (seed, ε, δ spent),
//! addressed by dense node index.

use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use sp_datasets::PaperDataset;
use sp_graph::io::ReadOptions;
use sp_graph::Graph;
use sp_model::{ModelFile, Provenance};
use sp_serve::{
    recall_at_k, EmbeddingStore, IvfConfig, IvfIndex, Server, ServerConfig, ServingStore,
};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Tsv,
    Model,
}

struct Args {
    input: String,
    dataset: Option<PaperDataset>,
    data_dir: Option<PathBuf>,
    scale: f64,
    output: String,
    output_format: OutputFormat,
    dim: usize,
    epsilon: f64,
    delta: f64,
    epochs: usize,
    proximity: ProximityKind,
    seed: u64,
    non_private: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    resume: bool,
}

struct QueryArgs {
    model: PathBuf,
    node: Option<u32>,
    k: usize,
    link: Option<(u32, u32)>,
    ivf_nlist: Option<usize>,
    nprobe: Option<usize>,
    check_recall: Option<f64>,
}

fn usage() -> &'static str {
    "usage: se_privgemb_cli (--input <edge-list[.gz]> | --dataset <name>) --output <file>\n\
     \t[--output-format tsv|model] [--data-dir <dir>] [--scale 1.0] [--dim 128]\n\
     \t[--epsilon 3.5] [--delta 1e-5] [--epochs 200] [--proximity dw|deg|cn|aa|ra|pa]\n\
     \t[--seed 1] [--non-private]\n\
     \t[--checkpoint-dir <dir> [--checkpoint-every 1000] [--resume]]\n\
     \t<name>: chameleon|ppi|power|arxiv|blogcatalog|dblp (real file from\n\
     \t--data-dir when present, seeded synthetic stand-in otherwise)\n\
     \t--checkpoint-dir persists crash-safe .spc training checkpoints every\n\
     \t--checkpoint-every optimizer steps; --resume continues from the newest\n\
     \tvalid checkpoint and produces a bit-identical model and ε to an\n\
     \tuninterrupted run.\n\
     \n\
     usage: se_privgemb_cli query --model <file.spm> (--node <id> | --link <u> <v>)\n\
     \t[--k 10] [--ivf-nlist <n> [--nprobe <p>]] [--check-recall <min>]\n\
     \tTop-k nearest neighbours (or a link score) from a published model;\n\
     \t--check-recall compares the ANN answer against the exact oracle and\n\
     \tfails the process when recall@k drops below <min>. --nprobe and\n\
     \t--check-recall only apply to the IVF path, so both require --ivf-nlist.\n\
     \n\
     usage: se_privgemb_cli serve --model <file.spm> --listen <addr:port>\n\
     \t[--ivf-nlist <n> [--nprobe <p>]] [--max-conns 64] [--threads <n>]\n\
     \t[--read-timeout-ms 30000] [--write-timeout-ms 10000]\n\
     \tServe the model over TCP (SPSERVE 1 line protocol: TOPK/LINK/INFO/\n\
     \tSTATS/RELOAD/QUIT/SHUTDOWN); SHUTDOWN drains in-flight requests and\n\
     \texits 0."
}

fn parse_dataset(name: &str) -> Result<PaperDataset, String> {
    match name.to_ascii_lowercase().as_str() {
        "chameleon" => Ok(PaperDataset::Chameleon),
        "ppi" => Ok(PaperDataset::Ppi),
        "power" => Ok(PaperDataset::Power),
        "arxiv" => Ok(PaperDataset::Arxiv),
        "blogcatalog" => Ok(PaperDataset::BlogCatalog),
        "dblp" => Ok(PaperDataset::Dblp),
        other => Err(format!("unknown dataset {other:?}\n{}", usage())),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        dataset: None,
        data_dir: None,
        scale: 1.0,
        output: String::new(),
        output_format: OutputFormat::Tsv,
        dim: 128,
        epsilon: 3.5,
        delta: 1e-5,
        epochs: 200,
        proximity: ProximityKind::deepwalk_default(),
        seed: 1,
        non_private: false,
        checkpoint_dir: None,
        checkpoint_every: 1000,
        resume: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--input" => args.input = value(&mut i)?,
            "--dataset" => args.dataset = Some(parse_dataset(&value(&mut i)?)?),
            "--data-dir" => args.data_dir = Some(PathBuf::from(value(&mut i)?)),
            "--scale" => {
                args.scale = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--output" => args.output = value(&mut i)?,
            "--output-format" => {
                args.output_format = match value(&mut i)?.as_str() {
                    "tsv" => OutputFormat::Tsv,
                    "model" => OutputFormat::Model,
                    other => return Err(format!("unknown output format {other:?}\n{}", usage())),
                }
            }
            "--dim" => args.dim = value(&mut i)?.parse().map_err(|e| format!("--dim: {e}"))?,
            "--epsilon" => {
                args.epsilon = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--delta" => {
                args.delta = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--delta: {e}"))?
            }
            "--epochs" => {
                args.epochs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--proximity" => {
                args.proximity = match value(&mut i)?.as_str() {
                    "dw" => ProximityKind::deepwalk_default(),
                    "deg" => ProximityKind::Degree,
                    "cn" => ProximityKind::CommonNeighbors,
                    "aa" => ProximityKind::AdamicAdar,
                    "ra" => ProximityKind::ResourceAllocation,
                    "pa" => ProximityKind::PreferentialAttachment,
                    other => return Err(format!("unknown proximity {other:?}")),
                }
            }
            "--non-private" => args.non_private = true,
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(value(&mut i)?)),
            "--checkpoint-every" => {
                args.checkpoint_every = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--resume" => args.resume = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if args.checkpoint_dir.is_none() && args.resume {
        return Err(format!(
            "--resume requires --checkpoint-dir (where checkpoints live)\n{}",
            usage()
        ));
    }
    if args.checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".to_string());
    }
    if args.input.is_empty() == args.dataset.is_none() {
        return Err(format!(
            "exactly one of --input and --dataset is required\n{}",
            usage()
        ));
    }
    if args.output.is_empty() {
        return Err(format!("--output is required\n{}", usage()));
    }
    Ok(args)
}

fn parse_query_args(argv: &[String]) -> Result<QueryArgs, String> {
    let mut args = QueryArgs {
        model: PathBuf::new(),
        node: None,
        k: 10,
        link: None,
        ivf_nlist: None,
        nprobe: None,
        check_recall: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--model" => args.model = PathBuf::from(value(&mut i)?),
            "--node" => {
                args.node = Some(value(&mut i)?.parse().map_err(|e| format!("--node: {e}"))?)
            }
            "--k" => args.k = value(&mut i)?.parse().map_err(|e| format!("--k: {e}"))?,
            "--link" => {
                let u: u32 = value(&mut i)?.parse().map_err(|e| format!("--link: {e}"))?;
                let v: u32 = value(&mut i)?.parse().map_err(|e| format!("--link: {e}"))?;
                args.link = Some((u, v));
            }
            "--ivf-nlist" => {
                args.ivf_nlist = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--ivf-nlist: {e}"))?,
                )
            }
            "--nprobe" => {
                args.nprobe = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--nprobe: {e}"))?,
                )
            }
            "--check-recall" => {
                args.check_recall = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--check-recall: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if args.model.as_os_str().is_empty() {
        return Err(format!("--model is required\n{}", usage()));
    }
    if args.node.is_none() == args.link.is_none() {
        return Err(format!(
            "exactly one of --node and --link is required\n{}",
            usage()
        ));
    }
    if args.ivf_nlist.is_none() && args.nprobe.is_some() {
        return Err(format!(
            "--nprobe requires --ivf-nlist (it is the IVF probe count)\n{}",
            usage()
        ));
    }
    if args.ivf_nlist.is_none() && args.check_recall.is_some() {
        return Err(format!(
            "--check-recall requires --ivf-nlist (the exact path always has recall 1)\n{}",
            usage()
        ));
    }
    Ok(args)
}

struct ServeArgs {
    model: PathBuf,
    listen: String,
    ivf_nlist: Option<usize>,
    nprobe: Option<usize>,
    max_conns: usize,
    threads: Option<usize>,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
}

fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        model: PathBuf::new(),
        listen: String::new(),
        ivf_nlist: None,
        nprobe: None,
        max_conns: 64,
        threads: None,
        read_timeout_ms: 30_000,
        write_timeout_ms: 10_000,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--model" => args.model = PathBuf::from(value(&mut i)?),
            "--listen" => args.listen = value(&mut i)?,
            "--ivf-nlist" => {
                args.ivf_nlist = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--ivf-nlist: {e}"))?,
                )
            }
            "--nprobe" => {
                args.nprobe = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--nprobe: {e}"))?,
                )
            }
            "--max-conns" => {
                args.max_conns = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--threads" => {
                args.threads = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--read-timeout-ms" => {
                args.read_timeout_ms = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?
            }
            "--write-timeout-ms" => {
                args.write_timeout_ms = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if args.model.as_os_str().is_empty() {
        return Err(format!("--model is required\n{}", usage()));
    }
    if args.listen.is_empty() {
        return Err(format!("--listen is required\n{}", usage()));
    }
    if args.ivf_nlist.is_none() && args.nprobe.is_some() {
        return Err(format!(
            "--nprobe requires --ivf-nlist (it is the IVF probe count)\n{}",
            usage()
        ));
    }
    if args.max_conns == 0 {
        return Err("--max-conns must be at least 1".to_string());
    }
    Ok(args)
}

/// The graph to train on plus each dense id's original label.
fn provision(args: &Args) -> Result<(Graph, Vec<u64>, String), String> {
    let opts = ReadOptions {
        enforce_declared_counts: true,
        skip_column_header: true,
        ..ReadOptions::default()
    };
    let from_file = |path: &std::path::Path| -> Result<(Graph, Vec<u64>, String), String> {
        let doc = sp_datasets::loaders::load_edge_list_path(path, opts)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let mut original: Vec<u64> = vec![0; doc.id_map.len()];
        for (&orig, &dense) in &doc.id_map {
            original[dense as usize] = orig;
        }
        Ok((doc.graph, original, path.display().to_string()))
    };
    match args.dataset {
        None => from_file(std::path::Path::new(&args.input)),
        Some(ds) => {
            if let Some(dir) = &args.data_dir {
                if let Some(path) = ds.locate(dir) {
                    return from_file(&path);
                }
                eprintln!(
                    "note: no {} edge list under {}; generating the synthetic stand-in",
                    ds.name(),
                    dir.display()
                );
            }
            let g = ds.generate(args.scale, args.seed);
            let original = (0..g.num_nodes() as u64).collect();
            let label = format!("{} (synthetic, scale {})", ds.name(), args.scale);
            Ok((g, original, label))
        }
    }
}

fn write_tsv(
    args: &Args,
    g: &Graph,
    original: &[u64],
    emb: &sp_linalg::DenseMatrix,
) -> Result<(), String> {
    let out = std::fs::File::create(&args.output)
        .map_err(|e| format!("cannot create {}: {e}", args.output))?;
    let mut w = std::io::BufWriter::new(out);
    for (v, id) in original.iter().enumerate().take(g.num_nodes()) {
        let mut line = id.to_string();
        for x in emb.row(v) {
            line.push('\t');
            line.push_str(&format!("{x:.6}"));
        }
        writeln!(w, "{line}").map_err(|e| format!("write error on {}: {e}", args.output))?;
    }
    w.flush()
        .map_err(|e| format!("flush error on {}: {e}", args.output))
}

fn run_train(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let (g, original, source) = provision(&args)?;
    eprintln!(
        "loaded {source}: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let mut builder = SePrivGEmb::builder()
        .dim(args.dim)
        .epochs(args.epochs)
        .proximity(args.proximity)
        .seed(args.seed);
    if args.non_private {
        builder = builder.strategy(PerturbStrategy::None);
    } else {
        builder = builder.epsilon(args.epsilon).delta(args.delta);
    }
    let result = match &args.checkpoint_dir {
        None => builder.build().fit(&g),
        Some(dir) => {
            let run = builder
                .checkpoint_every(args.checkpoint_every)
                .checkpoint_dir(dir.clone())
                .build()
                .fit_checkpointed(&g, args.resume)
                .map_err(|e| format!("checkpointed training failed: {e}"))?;
            match &run.resumed_from {
                Some(path) => eprintln!("resumed from {}", path.display()),
                None if args.resume => {
                    eprintln!("no checkpoint under {}; starting fresh", dir.display())
                }
                None => {}
            }
            run.result
        }
    };
    eprintln!(
        "trained: {} epochs ({} steps), ε spent = {:.4}, stopped by budget: {}",
        result.report.epochs_run,
        result.report.steps_run,
        result.report.epsilon_spent,
        result.report.stopped_by_budget
    );

    match args.output_format {
        OutputFormat::Tsv => {
            write_tsv(&args, &g, &original, result.embeddings())?;
            eprintln!(
                "wrote {} embeddings of dimension {} to {}",
                g.num_nodes(),
                args.dim,
                args.output
            );
        }
        OutputFormat::Model => {
            let provenance = if args.non_private {
                Provenance::non_private(args.seed)
            } else {
                Provenance {
                    seed: args.seed,
                    epsilon: result.report.epsilon_spent,
                    delta: result.report.delta_spent,
                }
            };
            let file = ModelFile::from_skipgram(&result.model, provenance);
            file.write_atomic(std::path::Path::new(&args.output))
                .map_err(|e| format!("cannot write {}: {e}", args.output))?;
            eprintln!(
                "published {} node vectors of dimension {} to {} (.spm, seed {}, ε {:.4})",
                g.num_nodes(),
                args.dim,
                args.output,
                provenance.seed,
                provenance.epsilon
            );
        }
    }
    Ok(())
}

fn run_query(argv: &[String]) -> Result<(), String> {
    let args = parse_query_args(argv)?;
    let store = EmbeddingStore::open(&args.model)
        .map_err(|e| format!("cannot load {}: {e}", args.model.display()))?;
    let p = store.provenance();
    eprintln!(
        "serving {}: {} nodes, dim {}, seed {}, ε {:.4}, δ {:.2e}",
        args.model.display(),
        store.num_nodes(),
        store.dim(),
        p.seed,
        p.epsilon,
        p.delta
    );

    let check_node = |node: u32| -> Result<(), String> {
        if (node as usize) < store.num_nodes() {
            Ok(())
        } else {
            Err(format!(
                "node {node} out of range (model has {} nodes)",
                store.num_nodes()
            ))
        }
    };

    if let Some((u, v)) = args.link {
        check_node(u)?;
        check_node(v)?;
        println!("{u}\t{v}\t{:.6}", store.link_score(u, v));
        return Ok(());
    }

    let node = args.node.expect("node xor link enforced by the parser");
    check_node(node)?;
    let answer = match args.ivf_nlist {
        None => store.exact_top_k_node(node, args.k),
        Some(nlist) => {
            let cfg = IvfConfig {
                nlist,
                nprobe: args.nprobe.unwrap_or_else(|| nlist.div_ceil(4)),
                ..IvfConfig::default()
            };
            let index = IvfIndex::build(&store, cfg, None);
            let answer = index.top_k_node(&store, node, args.k, cfg.nprobe);
            if let Some(min_recall) = args.check_recall {
                let exact = store.exact_top_k_node(node, args.k);
                let recall = recall_at_k(&answer, &exact);
                eprintln!(
                    "recall@{} vs exact oracle: {recall:.4} (threshold {min_recall})",
                    args.k
                );
                if recall < min_recall {
                    return Err(format!(
                        "ANN recall@{} {recall:.4} below required {min_recall}",
                        args.k
                    ));
                }
            }
            answer
        }
    };
    for (rank, n) in answer.iter().enumerate() {
        println!("{}\t{}\t{:.6}", rank + 1, n.node, n.score);
    }
    Ok(())
}

fn run_serve(argv: &[String]) -> Result<(), String> {
    let args = parse_serve_args(argv)?;
    let store = EmbeddingStore::open(&args.model)
        .map_err(|e| format!("cannot load {}: {e}", args.model.display()))?;
    let p = store.provenance();
    eprintln!(
        "loaded {}: {} nodes, dim {}, seed {}, ε {:.4}, δ {:.2e}",
        args.model.display(),
        store.num_nodes(),
        store.dim(),
        p.seed,
        p.epsilon,
        p.delta
    );
    let ivf = args.ivf_nlist.map(|nlist| IvfConfig {
        nlist,
        nprobe: args.nprobe.unwrap_or_else(|| nlist.div_ceil(4)),
        ..IvfConfig::default()
    });
    let index = ivf.map(|cfg| IvfIndex::build(&store, cfg, args.threads));
    let serving = Arc::new(ServingStore::new(store, index));
    let config = ServerConfig {
        max_conns: args.max_conns,
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        write_timeout: Duration::from_millis(args.write_timeout_ms),
        model_path: Some(args.model.clone()),
        ivf,
        threads: args.threads,
        ..ServerConfig::default()
    };
    let server = Server::bind(args.listen.as_str(), serving, config)
        .map_err(|e| format!("cannot listen on {}: {e}", args.listen))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    println!(
        "se_privgemb_cli serving on {addr} (SPSERVE {})",
        sp_serve::protocol::PROTOCOL_VERSION
    );
    let report = server.run().map_err(|e| format!("server failed: {e}"))?;
    println!(
        "drained: {} requests ({} errors) over {} connections ({} rejected)",
        report.requests, report.errors, report.connections, report.rejected
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("query") => run_query(&argv[1..]),
        Some("serve") => run_serve(&argv[1..]),
        _ => run_train(&argv),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
