//! Attributed graphs under DP — the paper's other future-work item
//! (§VIII):
//!
//! > "we plan to extend our method to attribute graphs … Notably, the
//! > attributes associated with the nodes are independent and can be
//! > easily managed due to their low sensitivity."
//!
//! Exactly as the paper observes, per-node attribute vectors decompose
//! cleanly: after clipping each node's attribute row to ℓ2 norm `C_a`,
//! replacing one node changes the released matrix by at most one row
//! of norm `C_a` (bounded node-level DP, replace-one semantics gives
//! sensitivity `2·C_a`; we charge the conservative value). A single
//! Gaussian mechanism with σ calibrated to the attribute budget
//! releases all rows at once, and the released matrix composes with
//! the structural embedding by simple concatenation — both inputs are
//! already DP, so the combination is post-processing.

use rand::Rng;
use sp_dp::{calibrate_noise_multiplier, GaussianSampler};
use sp_linalg::{vector, DenseMatrix};

/// Result of a private attribute release.
#[derive(Clone, Debug)]
pub struct AttributeRelease {
    /// The noisy, clipped attribute matrix (`|V| × d_attr`).
    pub attributes: DenseMatrix,
    /// The noise multiplier the budget calibrated to.
    pub sigma: f64,
    /// The clipping bound applied to every row.
    pub clip: f64,
}

/// Releases node attributes under `(ε, δ)` node-level DP: every row is
/// clipped to ℓ2 norm `clip`, then i.i.d. Gaussian noise with std
/// `2·clip·σ(ε, δ)` is added per coordinate (replace-one sensitivity
/// `2·clip`, single mechanism).
///
/// # Panics
/// Panics on non-positive `clip`, or invalid `(ε, δ)`.
pub fn release_attributes<R: Rng + ?Sized>(
    attrs: &DenseMatrix,
    clip: f64,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
) -> AttributeRelease {
    assert!(clip > 0.0, "clip must be positive");
    let sigma = calibrate_noise_multiplier(1, epsilon, delta);
    let mut out = attrs.clone();
    for r in 0..out.rows() {
        vector::clip_norm(out.row_mut(r), clip);
    }
    let mut sampler = GaussianSampler::new();
    sampler.perturb_slice(out.as_mut_slice(), 2.0 * clip * sigma, rng);
    AttributeRelease {
        attributes: out,
        sigma,
        clip,
    }
}

/// Concatenates a structural embedding with released attributes
/// row-wise: `[emb | attrs]`, the attributed-graph embedding. Both
/// inputs must already be DP; the concatenation is post-processing
/// (Theorem 2) and the result satisfies the *sum* of the two budgets
/// by sequential composition.
///
/// # Panics
/// Panics if the row counts differ.
pub fn augment_embeddings(emb: &DenseMatrix, attrs: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        emb.rows(),
        attrs.rows(),
        "embedding and attribute row counts differ"
    );
    let d = emb.cols() + attrs.cols();
    let mut out = DenseMatrix::zeros(emb.rows(), d);
    for r in 0..emb.rows() {
        out.row_mut(r)[..emb.cols()].copy_from_slice(emb.row(r));
        out.row_mut(r)[emb.cols()..].copy_from_slice(attrs.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_linalg::stats;

    fn attrs() -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(1);
        DenseMatrix::uniform(50, 8, -3.0, 3.0, &mut rng)
    }

    #[test]
    fn release_clips_then_noises() {
        let a = attrs();
        let mut rng = StdRng::seed_from_u64(2);
        let rel = release_attributes(&a, 1.0, 2.0, 1e-5, &mut rng);
        assert_eq!(rel.attributes.shape(), a.shape());
        assert!(rel.sigma > 0.0);
        // Rows are clipped + noised: no row can be a huge multiple of
        // the clip bound plus noise tail; crude sanity bound.
        for r in 0..rel.attributes.rows() {
            let n = vector::norm2(rel.attributes.row(r));
            assert!(n < 1.0 + 10.0 * 2.0 * rel.sigma, "row {r} norm {n}");
        }
    }

    #[test]
    fn noise_scale_tracks_budget() {
        let a = attrs();
        let rel_tight = release_attributes(&a, 1.0, 0.5, 1e-5, &mut StdRng::seed_from_u64(3));
        let rel_loose = release_attributes(&a, 1.0, 3.5, 1e-5, &mut StdRng::seed_from_u64(3));
        assert!(
            rel_tight.sigma > rel_loose.sigma,
            "smaller ε must mean more noise"
        );
        // Empirical noise scale: mean |released − clipped| grows with σ.
        let mut clipped = a.clone();
        for r in 0..clipped.rows() {
            vector::clip_norm(clipped.row_mut(r), 1.0);
        }
        let err = |rel: &AttributeRelease| {
            let mut d = rel.attributes.clone();
            d.add_scaled(-1.0, &clipped);
            d.frobenius_norm()
        };
        assert!(err(&rel_tight) > err(&rel_loose));
    }

    #[test]
    fn released_noise_is_zero_mean() {
        // Average many releases: converges to the clipped original.
        let a = attrs();
        let mut clipped = a.clone();
        for r in 0..clipped.rows() {
            vector::clip_norm(clipped.row_mut(r), 1.0);
        }
        let mut mean = DenseMatrix::zeros(a.rows(), a.cols());
        let n = 200;
        for s in 0..n {
            let rel = release_attributes(&a, 1.0, 3.5, 1e-5, &mut StdRng::seed_from_u64(100 + s));
            mean.add_scaled(1.0 / n as f64, &rel.attributes);
        }
        let diffs: Vec<f64> = mean
            .as_slice()
            .iter()
            .zip(clipped.as_slice())
            .map(|(m, c)| m - c)
            .collect();
        let bias = stats::mean(&diffs).abs();
        assert!(bias < 0.05, "release should be unbiased, bias {bias}");
    }

    #[test]
    fn augmentation_concatenates() {
        let emb = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let at = DenseMatrix::from_vec(2, 1, vec![9.0, 8.0]);
        let aug = augment_embeddings(&emb, &at);
        assert_eq!(aug.shape(), (2, 3));
        assert_eq!(aug.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(aug.row(1), &[3.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "row counts differ")]
    fn augmentation_rejects_mismatched_rows() {
        let emb = DenseMatrix::zeros(2, 2);
        let at = DenseMatrix::zeros(3, 1);
        augment_embeddings(&emb, &at);
    }
}
