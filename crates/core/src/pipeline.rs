//! The high-level fit pipeline: proximity → Algorithm 1 → Algorithm 2.

use sp_graph::Graph;
use sp_linalg::DenseMatrix;
use sp_model::checkpoint::train_with_checkpoints;
use sp_model::ModelError;
use sp_proximity::{EdgeProximity, ProximityKind};
use sp_skipgram::{
    NegativeSampling, PerturbStrategy, SkipGramModel, TrainConfig, TrainReport, Trainer,
};
use std::path::PathBuf;

/// A configured SE-PrivGEmb instance. Construct with
/// [`SePrivGEmb::builder`]; run with [`SePrivGEmb::fit`].
#[derive(Clone, Debug)]
pub struct SePrivGEmb {
    train: TrainConfig,
    proximity: ProximityKind,
}

/// Builder over every paper parameter; unset fields keep the paper's
/// §VI-A defaults.
#[derive(Clone, Debug)]
pub struct SePrivGEmbBuilder {
    train: TrainConfig,
    proximity: ProximityKind,
}

impl Default for SePrivGEmbBuilder {
    fn default() -> Self {
        Self {
            train: TrainConfig::default(),
            proximity: ProximityKind::deepwalk_default(),
        }
    }
}

impl SePrivGEmbBuilder {
    /// Embedding dimension `r` (default 128).
    pub fn dim(mut self, dim: usize) -> Self {
        self.train.dim = dim;
        self
    }

    /// Structure preference (default: DeepWalk proximity, window 2).
    pub fn proximity(mut self, kind: ProximityKind) -> Self {
        self.proximity = kind;
        self
    }

    /// Negative samples per edge `k` (default 5).
    pub fn negatives(mut self, k: usize) -> Self {
        self.train.negatives = k;
        self
    }

    /// Batch size `B` (default 128).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.train.batch_size = b;
        self
    }

    /// Learning rate `η` (default 0.1).
    pub fn learning_rate(mut self, lr: f64) -> Self {
        self.train.learning_rate = lr;
        self
    }

    /// Clipping threshold `C` (default 2).
    pub fn clip(mut self, c: f64) -> Self {
        self.train.clip = c;
        self
    }

    /// Noise multiplier `σ` (default 5).
    pub fn sigma(mut self, s: f64) -> Self {
        self.train.sigma = s;
        self
    }

    /// Privacy budget ε (default 3.5).
    pub fn epsilon(mut self, e: f64) -> Self {
        self.train.epsilon = e;
        self
    }

    /// Failure probability δ (default 1e-5).
    pub fn delta(mut self, d: f64) -> Self {
        self.train.delta = d;
        self
    }

    /// Maximum epochs (default 200; the paper uses 2000 for link
    /// prediction — see [`crate::presets`]).
    pub fn epochs(mut self, n: usize) -> Self {
        self.train.epochs = n;
        self
    }

    /// Perturbation strategy (default: the paper's non-zero
    /// perturbation; [`PerturbStrategy::None`] gives the non-private
    /// SE-GEmb).
    pub fn strategy(mut self, s: PerturbStrategy) -> Self {
        self.train.strategy = s;
        self
    }

    /// Negative-sampling scheme (default: Algorithm 1's uniform
    /// non-neighbour sampling, required for Theorem 3).
    pub fn negative_sampling(mut self, ns: NegativeSampling) -> Self {
        self.train.negative_sampling = ns;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.train.seed = s;
        self
    }

    /// Persist a `.spc` training checkpoint every `steps` optimizer
    /// steps (unset by default). Takes effect through
    /// [`SePrivGEmb::fit_checkpointed`] together with
    /// [`SePrivGEmbBuilder::checkpoint_dir`]; cadence never changes
    /// the fitted model — only how often progress is made durable.
    pub fn checkpoint_every(mut self, steps: u64) -> Self {
        self.train.checkpoint_every = Some(steps);
        self
    }

    /// Directory that receives `.spc` checkpoints (and is scanned on
    /// resume). Created on first use.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.train.checkpoint_dir = Some(dir.into());
        self
    }

    /// Worker threads for the proximity build and the per-example
    /// gradient pass (default: the `SP_THREADS` environment variable,
    /// then the available parallelism). The fitted model is
    /// byte-identical for every thread count — parallelism never
    /// perturbs a seeded run or its privacy accounting.
    pub fn threads(mut self, t: usize) -> Self {
        self.train.threads = Some(t);
        self
    }

    /// Finalises; panics on invalid parameter combinations.
    pub fn build(self) -> SePrivGEmb {
        if let Err(e) = self.train.validate() {
            panic!("invalid SE-PrivGEmb configuration: {e}");
        }
        SePrivGEmb {
            train: self.train,
            proximity: self.proximity,
        }
    }
}

/// The trained artefacts.
#[derive(Clone, Debug)]
pub struct EmbeddingResult {
    /// The trained skip-gram model (`Θ = {W_in, W_out}`, both DP).
    pub model: SkipGramModel,
    /// Training telemetry (epochs run, budget spent, early stop).
    pub report: TrainReport,
    /// The proximity weighting used (edge weights + `min(P)`).
    pub proximity: EdgeProximity,
}

impl EmbeddingResult {
    /// The published node vectors (`W_in`), one row per node — the
    /// matrix downstream tasks consume (Theorem 2: any
    /// post-processing of it stays `(ε, δ)`-DP).
    pub fn embeddings(&self) -> &DenseMatrix {
        &self.model.w_in
    }
}

/// A crash-safe fit's artefacts: the trained result plus where (if
/// anywhere) the run resumed from.
#[derive(Clone, Debug)]
pub struct CheckpointedEmbedding {
    /// The trained artefacts — bit-identical to an uninterrupted
    /// [`SePrivGEmb::fit`] of the same configuration.
    pub result: EmbeddingResult,
    /// The `.spc` checkpoint this run resumed from, when one existed.
    pub resumed_from: Option<PathBuf>,
}

impl SePrivGEmb {
    /// Entry point: a builder pre-loaded with the paper's defaults.
    ///
    /// ```
    /// use se_privgemb::{ProximityKind, SePrivGEmb};
    /// use sp_graph::Graph;
    ///
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
    /// let result = SePrivGEmb::builder()
    ///     .dim(8)
    ///     .epochs(5)
    ///     .proximity(ProximityKind::Degree)
    ///     .epsilon(2.0)
    ///     .seed(42)
    ///     .build()
    ///     .fit(&g);
    /// assert_eq!(result.embeddings().rows(), 4);
    /// assert!(result.report.epsilon_spent <= 2.0);
    /// ```
    pub fn builder() -> SePrivGEmbBuilder {
        SePrivGEmbBuilder::default()
    }

    /// The underlying training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// The configured structure preference.
    pub fn proximity_kind(&self) -> ProximityKind {
        self.proximity
    }

    /// Computes the proximity weighting and runs Algorithm 2.
    pub fn fit(&self, g: &Graph) -> EmbeddingResult {
        let prox = EdgeProximity::compute_threads(g, self.proximity, self.train.threads);
        self.fit_with_proximity(g, prox)
    }

    /// Runs Algorithm 2 with a pre-computed proximity (lets callers
    /// amortise the proximity matrix across repeated runs, as the
    /// experiment sweeps do).
    pub fn fit_with_proximity(&self, g: &Graph, prox: EdgeProximity) -> EmbeddingResult {
        let (model, report) = Trainer::new(self.train.clone()).train(g, &prox);
        EmbeddingResult {
            model,
            report,
            proximity: prox,
        }
    }

    /// Crash-safe [`SePrivGEmb::fit`]: persists a `.spc` checkpoint
    /// every [`SePrivGEmbBuilder::checkpoint_every`] steps into
    /// [`SePrivGEmbBuilder::checkpoint_dir`], and — when `resume` is
    /// set — continues from the newest valid checkpoint found there.
    ///
    /// Resumed runs are bit-identical to an uninterrupted fit of the
    /// same configuration, including the privacy accountant: the raw
    /// RDP curve is restored from the snapshot, never re-spent, so the
    /// composed ε across any crash/resume sequence equals the
    /// uninterrupted run's and stays within budget.
    ///
    /// # Errors
    /// `Io(InvalidInput)` when no `checkpoint_dir` was configured;
    /// otherwise checkpoint IO failures or an `InvalidData` fingerprint
    /// mismatch (resuming against a different config or graph).
    pub fn fit_checkpointed(
        &self,
        g: &Graph,
        resume: bool,
    ) -> Result<CheckpointedEmbedding, ModelError> {
        let prox = EdgeProximity::compute_threads(g, self.proximity, self.train.threads);
        let trainer = Trainer::new(self.train.clone());
        let run = train_with_checkpoints(&trainer, g, &prox, None, resume)?;
        Ok(CheckpointedEmbedding {
            result: EmbeddingResult {
                model: run.model,
                report: run.report,
                proximity: prox,
            },
            resumed_from: run.resumed_from,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_eval::{struc_equ, PairSelection};

    fn two_cliques_bridge(k: usize) -> Graph {
        let mut edges = Vec::new();
        let k = k as u32;
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j));
                edges.push((i + k, j + k));
            }
        }
        edges.push((0, k));
        Graph::from_edges(2 * k as usize, edges)
    }

    fn quick_builder() -> SePrivGEmbBuilder {
        SePrivGEmb::builder()
            .dim(16)
            .negatives(3)
            .batch_size(16)
            .epochs(30)
            .seed(42)
    }

    #[test]
    fn fit_produces_embeddings_within_budget() {
        let g = two_cliques_bridge(8);
        let result = quick_builder().epsilon(3.5).build().fit(&g);
        assert_eq!(result.embeddings().rows(), 16);
        assert_eq!(result.embeddings().cols(), 16);
        assert!(result.report.epsilon_spent <= 3.5);
        assert!(result.report.delta_spent < 1e-5);
    }

    #[test]
    fn nonzero_beats_naive_on_structure() {
        // Table VI's headline: the non-zero perturbation strategy
        // preserves far more structure than the naive B·C-sensitivity
        // strategy at the same budget.
        let g = two_cliques_bridge(10);
        let nz = quick_builder()
            .strategy(PerturbStrategy::NonZero)
            .epochs(60)
            .seed(11)
            .build()
            .fit(&g);
        let naive = quick_builder()
            .strategy(PerturbStrategy::Naive)
            .epochs(60)
            .seed(11)
            .build()
            .fit(&g);
        let s_nz = struc_equ(&g, nz.embeddings(), PairSelection::All).unwrap();
        let s_naive = struc_equ(&g, naive.embeddings(), PairSelection::All).unwrap();
        assert!(
            s_nz > s_naive,
            "non-zero ({s_nz}) should beat naive ({s_naive})"
        );
    }

    #[test]
    fn nonprivate_training_learns_structure() {
        let g = two_cliques_bridge(10);
        let nonpriv = quick_builder()
            .strategy(PerturbStrategy::None)
            .epochs(120)
            .build()
            .fit(&g);
        let s = struc_equ(&g, nonpriv.embeddings(), PairSelection::All).unwrap();
        assert!(s > 0.2, "non-private StrucEqu too weak: {s}");
    }

    #[test]
    fn proximity_kind_flows_through() {
        let g = two_cliques_bridge(6);
        let model = quick_builder().proximity(ProximityKind::Degree).build();
        assert_eq!(model.proximity_kind(), ProximityKind::Degree);
        let result = model.fit(&g);
        assert_eq!(result.proximity.kind, ProximityKind::Degree);
        assert_eq!(result.proximity.len(), g.num_edges());
    }

    #[test]
    fn fit_with_precomputed_proximity_matches_fit() {
        let g = two_cliques_bridge(6);
        let model = quick_builder().build();
        let prox = EdgeProximity::compute(&g, model.proximity_kind());
        let a = model.fit(&g);
        let b = model.fit_with_proximity(&g, prox);
        assert_eq!(a.embeddings().as_slice(), b.embeddings().as_slice());
    }

    #[test]
    fn builder_covers_every_paper_parameter() {
        let m = SePrivGEmb::builder()
            .dim(64)
            .negatives(7)
            .batch_size(256)
            .learning_rate(0.15)
            .clip(3.0)
            .sigma(4.0)
            .epsilon(2.0)
            .delta(1e-6)
            .epochs(100)
            .strategy(PerturbStrategy::Naive)
            .negative_sampling(NegativeSampling::DegreeProportional)
            .seed(5)
            .threads(2)
            .checkpoint_every(500)
            .checkpoint_dir("/tmp/ckpts")
            .proximity(ProximityKind::Degree)
            .build();
        let c = m.train_config();
        assert_eq!(c.dim, 64);
        assert_eq!(c.negatives, 7);
        assert_eq!(c.batch_size, 256);
        assert_eq!(c.learning_rate, 0.15);
        assert_eq!(c.clip, 3.0);
        assert_eq!(c.sigma, 4.0);
        assert_eq!(c.epsilon, 2.0);
        assert_eq!(c.delta, 1e-6);
        assert_eq!(c.epochs, 100);
        assert_eq!(c.strategy, PerturbStrategy::Naive);
        assert_eq!(c.negative_sampling, NegativeSampling::DegreeProportional);
        assert_eq!(c.seed, 5);
        assert_eq!(c.threads, Some(2));
        assert_eq!(c.checkpoint_every, Some(500));
        assert_eq!(
            c.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ckpts"))
        );
    }

    #[test]
    fn fit_checkpointed_matches_fit_bit_for_bit() {
        let g = two_cliques_bridge(6);
        let dir = std::env::temp_dir().join(format!("se_privgemb_ckpt_{}", std::process::id()));
        let model = quick_builder()
            .checkpoint_every(2)
            .checkpoint_dir(&dir)
            .build();
        let plain = quick_builder().build().fit(&g);
        let checkpointed = model.fit_checkpointed(&g, false).unwrap();
        assert!(checkpointed.resumed_from.is_none());
        assert_eq!(
            plain.embeddings().as_slice(),
            checkpointed.result.embeddings().as_slice(),
            "checkpoint cadence must never change the fitted model"
        );
        assert_eq!(
            plain.report.epsilon_spent.to_bits(),
            checkpointed.result.report.epsilon_spent.to_bits()
        );
        // A second run resumes from the durable trail and still lands
        // on the identical model.
        let resumed = model.fit_checkpointed(&g, true).unwrap();
        assert!(resumed.resumed_from.is_some());
        assert_eq!(
            plain.embeddings().as_slice(),
            resumed.result.embeddings().as_slice()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "invalid SE-PrivGEmb configuration")]
    fn builder_rejects_nonsense() {
        SePrivGEmb::builder().dim(0).build();
    }
}
